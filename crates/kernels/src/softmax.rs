//! Numerically stable softmax over the last dimension of `NC` activations.
//!
//! Softmax is layout-oblivious in the §3.2 taxonomy; the models only apply
//! it to the rank-2 classifier output, so that is the supported form.

use neocpu_tensor::{Layout, Tensor};
use neocpu_threadpool::Parallelism;

use crate::util::SendPtr;
use crate::{KernelError, Result};

/// Row-wise softmax: `out[n, :] = exp(x − max) / Σ exp(x − max)`.
///
/// # Errors
///
/// Returns an error if operands are not matching `NC` tensors.
pub fn softmax(input: &Tensor, output: &mut Tensor, par: &dyn Parallelism) -> Result<()> {
    if input.layout() != Layout::Nc || output.layout() != Layout::Nc {
        return Err(KernelError::BadOperand("softmax expects NC tensors".into()));
    }
    if input.shape() != output.shape() {
        return Err(KernelError::BadOperand("softmax shape mismatch".into()));
    }
    let d = input.shape().dims();
    let (n, c) = (d[0], d[1]);
    let x = input.data();
    let out_ptr = SendPtr(output.data_mut().as_mut_ptr());
    par.run(n, &|_, range| {
        let out_ptr = out_ptr;
        for row in range {
            let xr = &x[row * c..(row + 1) * c];
            let max = xr.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if max == f32::NEG_INFINITY {
                // Every logit is -inf: `v - max` would be NaN. Degrade to
                // the uniform distribution, mirroring the empty-pooling
                // window fix — no NaN may escape the kernel library.
                let u = 1.0 / c as f32;
                for i in 0..c {
                    // SAFETY: rows are disjoint.
                    unsafe { *out_ptr.add(row * c + i) = u };
                }
                continue;
            }
            let mut sum = 0f32;
            for (i, &v) in xr.iter().enumerate() {
                let e = (v - max).exp();
                sum += e;
                // SAFETY: rows are disjoint.
                unsafe { *out_ptr.add(row * c + i) = e };
            }
            // `sum >= exp(max - max) = 1` whenever `max` is finite, but
            // guard the reciprocal anyway: a non-normal sum (underflow to
            // 0, or inf from huge rows) would turn the scale into inf/NaN.
            let inv = 1.0 / sum;
            if inv.is_finite() && inv > 0.0 {
                for i in 0..c {
                    // SAFETY: rows are disjoint.
                    unsafe { *out_ptr.add(row * c + i) *= inv };
                }
            } else {
                let u = 1.0 / c as f32;
                for i in 0..c {
                    // SAFETY: rows are disjoint.
                    unsafe { *out_ptr.add(row * c + i) = u };
                }
            }
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use neocpu_threadpool::Sequential;

    #[test]
    fn rows_sum_to_one_and_order_preserved() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], [2, 3], Layout::Nc)
            .unwrap();
        let mut out = Tensor::zeros([2, 3], Layout::Nc).unwrap();
        softmax(&x, &mut out, &Sequential).unwrap();
        for row in 0..2 {
            let r = &out.data()[row * 3..(row + 1) * 3];
            let sum: f32 = r.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(r[0] < r[1] && r[1] < r[2]);
        }
    }

    #[test]
    fn stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1000.0, 1000.0], [1, 2], Layout::Nc).unwrap();
        let mut out = Tensor::zeros([1, 2], Layout::Nc).unwrap();
        softmax(&x, &mut out, &Sequential).unwrap();
        assert!((out.data()[0] - 0.5).abs() < 1e-6);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn all_neg_inf_row_degrades_to_uniform() {
        let x = Tensor::from_vec(
            vec![f32::NEG_INFINITY, f32::NEG_INFINITY, f32::NEG_INFINITY, 0.0, 1.0, 2.0],
            [2, 3],
            Layout::Nc,
        )
        .unwrap();
        let mut out = Tensor::zeros([2, 3], Layout::Nc).unwrap();
        softmax(&x, &mut out, &Sequential).unwrap();
        // Degenerate row: uniform, not NaN.
        for &v in &out.data()[..3] {
            assert!((v - 1.0 / 3.0).abs() < 1e-6, "got {v}");
        }
        // Healthy row in the same batch is unaffected.
        let healthy: f32 = out.data()[3..].iter().sum();
        assert!((healthy - 1.0).abs() < 1e-6);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn extreme_negative_and_mixed_inf_logits_stay_finite() {
        // One finite logit among -inf: all mass on the finite one.
        let x = Tensor::from_vec(
            vec![f32::NEG_INFINITY, -5.0, f32::NEG_INFINITY, -3.4e38, -3.4e38, -3.4e38],
            [2, 3],
            Layout::Nc,
        )
        .unwrap();
        let mut out = Tensor::zeros([2, 3], Layout::Nc).unwrap();
        softmax(&x, &mut out, &Sequential).unwrap();
        assert!(out.data().iter().all(|v| v.is_finite()));
        assert!((out.data()[1] - 1.0).abs() < 1e-6);
        let r1: f32 = out.data()[3..].iter().sum();
        assert!((r1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_non_nc() {
        let x = Tensor::zeros([1, 2, 1, 1], Layout::Nchw).unwrap();
        let mut out = Tensor::zeros([1, 2, 1, 1], Layout::Nchw).unwrap();
        assert!(softmax(&x, &mut out, &Sequential).is_err());
    }
}
