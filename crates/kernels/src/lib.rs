//! Templated CNN operator kernels (NeoCPU §3.1).
//!
//! The crate's centerpiece is the direct-convolution template of Algorithm 1:
//! data lives in the blocked `NCHW[x]c` layout, weights in `OIHW[x]i[y]o`,
//! the output width is split by a register-blocking factor `reg_n`, and the
//! innermost loops broadcast one vector of kernel values against `reg_n`
//! accumulator vectors held in SIMD registers. The template is configured by
//! a [`ConvSchedule`] tuple `(ic_bn, oc_bn, reg_n, unroll_ker)` — exactly
//! the knobs the paper's local search explores — and dispatches to an
//! AVX-512, AVX2, or portable-scalar microkernel at runtime.
//!
//! Reference kernels in plain `NCHW`/`NHWC` serve both as the correctness
//! oracle for every optimized path and as the "framework default layout"
//! baselines in the evaluation harness.
//!
//! All remaining CNN operators the evaluated models need (pooling, batch
//! norm, dense, softmax, concat, element-wise ops) live here too, each
//! implemented for the layouts its §3.2 class requires: layout-oblivious
//! ops work on flat slices, layout-tolerant ops handle both `NCHW` and
//! `NCHW[x]c`, and layout-dependent ops demand plain `NCHW`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Kernel-code idioms the default lint set dislikes: explicit index loops
// mirror the register tiling they implement, pointer re-binds force
// by-value capture into parallel closures, and kernel entry points take
// the full operand set as arguments.
#![allow(clippy::needless_range_loop, clippy::redundant_locals, clippy::too_many_arguments)]

pub mod conv;
pub mod dense;
pub mod elementwise;
pub mod pool2d;
pub mod quantize;
pub mod softmax;

mod error;
mod util;

pub use conv::{
    conv2d_nchw_direct, conv2d_nchwc, conv2d_nchwc_u8, conv2d_nhwc_direct,
    depthwise_conv2d_nchwc, depthwise_conv2d_nchwc_u8, padded_input_len, Conv2dParams,
    ConvQuant, ConvSchedule, Epilogue,
};
pub use error::KernelError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, KernelError>;
