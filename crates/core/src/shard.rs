//! Replica sharding: N core-partitioned [`ServeEngine`]s behind one
//! dispatching front end.
//!
//! One engine's submission queue serializes on a single mutex, all of its
//! workers share one cache-coherence neighborhood, and a full drain stalls
//! the whole model. A [`ShardedEngine`] instead carves the process cpuset
//! into per-replica partitions ([`CoreSet::partition`]) and runs one
//! complete `ServeEngine` per partition — own workers, own arena-backed
//! contexts, own queue, own watchdog:
//!
//! ```text
//!             submit / try_submit
//!                      │
//!             least-loaded dispatch            (skips non-Ready replicas,
//!                      │                        round-robin tiebreak)
//!        ┌─────────────┼─────────────┐
//!        ▼             ▼             ▼
//!   replica 0      replica 1     replica 2
//!   queue+workers  queue+workers queue+workers
//!   cores {0,1}    cores {2,3}   cores {4,5}
//!        ▲─────steal────▲─────steal────▲
//! ```
//!
//! * **Dispatch** routes each submission to the Ready replica with the
//!   shallowest queue (ties rotate). The scan is allocation-free, so the
//!   warm fill → submit → wait cycle stays zero-alloc through the shard.
//! * **Work stealing** (wired by `serve::link_replicas`) lets an idle
//!   replica's worker claim requests queued on a busy sibling, so a load
//!   spike on one partition spills over instead of queueing behind it.
//! * **Failure isolation**: a replica whose workers die (or that is shut
//!   down outright) stops being picked by dispatch, and whatever is stuck
//!   in its queue is stolen by live siblings — the fleet keeps serving.
//! * **Reporting** merges per-replica stats at the raw-sample level:
//!   fleet percentiles are computed over the union of latency rings
//!   (never over per-replica percentiles), and stay NaN when no replica
//!   has completed anything.
//!
//! With fewer cores than replicas the partitioning degrades to
//! round-robin single-core (overlapping) partitions — replicas time-share
//! cores rather than fail, which also keeps single-core CI honest.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use neocpu_tensor::Tensor;
use neocpu_threadpool::affinity::{self, CoreSet};

use crate::executor::Module;
use crate::serve::{
    self, EngineHealth, Request, ServeEngine, ServeOptions, ServeReport,
};
use crate::{NeoError, Result};

/// Dispatch bookkeeping uses a fixed-width bitmask so the warm path never
/// allocates; more replicas than machine cores is pathological anyway.
const MAX_REPLICAS: usize = 64;

/// Fleet-wide serving statistics: the merged view plus each replica's own
/// report (see [`ShardedEngine::report`]).
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Merged fleet view: counters summed, percentiles recomputed over
    /// the union of all replicas' latency samples (NaN when empty).
    pub fleet: ServeReport,
    /// Per-replica reports, indexed by replica.
    pub replicas: Vec<ServeReport>,
}

impl std::fmt::Display for ShardReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "fleet ({} replicas): {}", self.replicas.len(), self.fleet)?;
        for (i, r) in self.replicas.iter().enumerate() {
            writeln!(f, "  replica {i}: {r}")?;
        }
        Ok(())
    }
}

/// N core-partitioned [`ServeEngine`] replicas behind a least-loaded,
/// work-stealing dispatcher. API-compatible with a single engine
/// (`make_request` / `submit` / `try_submit` / `infer` / `health` /
/// `shutdown*`), so front ends treat `replicas: 1` and `replicas: N`
/// identically.
pub struct ShardedEngine {
    replicas: Vec<ServeEngine>,
    /// Round-robin cursor breaking dispatch ties between equally loaded
    /// replicas.
    rr: AtomicUsize,
    started: Instant,
}

impl ShardedEngine {
    /// Starts `replicas` engines over `module`, each confined to its own
    /// partition of the engine's core set.
    ///
    /// The partition source is [`ServeOptions::core_set`] when given;
    /// otherwise `replicas × workers` slots are reserved from the
    /// process-global cursor (see `affinity::reserve_cores`), keeping
    /// this fleet off cores other engines already claimed. Every other
    /// option applies to each replica as-is — `workers` is *per replica*.
    ///
    /// # Errors
    ///
    /// Returns [`NeoError::Config`] for zero (or more than 64) replicas
    /// or invalid engine options; propagates replica construction
    /// failures.
    pub fn new(module: Arc<Module>, replicas: usize, opts: &ServeOptions) -> Result<Self> {
        if replicas == 0 {
            return Err(NeoError::Config("a sharded engine needs at least one replica".into()));
        }
        if replicas > MAX_REPLICAS {
            return Err(NeoError::Config(format!(
                "at most {MAX_REPLICAS} replicas are supported, got {replicas}"
            )));
        }
        let partitions: Vec<Option<CoreSet>> = if opts.bind_workers {
            let whole = match &opts.core_set {
                Some(set) => set.clone(),
                None => affinity::reserve_cores(replicas * opts.workers.max(1)),
            };
            if whole.is_empty() {
                // No affinity API on this host: run every replica unbound.
                vec![None; replicas]
            } else {
                whole.partition(replicas).into_iter().map(Some).collect()
            }
        } else {
            vec![None; replicas]
        };
        let engines = partitions
            .into_iter()
            .map(|core_set| {
                ServeEngine::new(Arc::clone(&module), &ServeOptions { core_set, ..opts.clone() })
            })
            .collect::<Result<Vec<_>>>()?;
        serve::link_replicas(&engines);
        Ok(Self { replicas: engines, rr: AtomicUsize::new(0), started: Instant::now() })
    }

    /// Number of replicas in the fleet.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Direct access to one replica (tests, drills, and per-replica
    /// introspection; serving traffic should go through the dispatcher).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn replica(&self, i: usize) -> &ServeEngine {
        &self.replicas[i]
    }

    /// The module's compiled batch size B (identical on every replica).
    pub fn module_batch(&self) -> usize {
        self.replicas[0].module_batch()
    }

    /// Fleet lifecycle state: `Ready` while *any* replica is ready (the
    /// fleet serves as long as one partition serves).
    pub fn health(&self) -> EngineHealth {
        serve::aggregate_health(self.replicas.iter().map(ServeEngine::health))
    }

    /// Total queued requests across all replicas.
    pub fn queue_depth(&self) -> usize {
        self.replicas.iter().map(ServeEngine::queue_depth).sum()
    }

    /// Creates a request slot usable with any replica (the dispatcher
    /// binds it to a replica per submission). Same allocation contract as
    /// [`ServeEngine::make_request`].
    pub fn make_request(&self) -> Arc<Request> {
        self.replicas[0].make_request()
    }

    /// Picks the Ready replica with the shallowest queue among those not
    /// in `tried` (a bitmask of replica indices), rotating the tiebreak
    /// cursor so equally loaded replicas share arrivals. Allocation-free.
    fn pick(&self, tried: u64) -> Option<usize> {
        let n = self.replicas.len();
        let offset = self.rr.fetch_add(1, Ordering::Relaxed);
        let mut best: Option<(usize, usize)> = None;
        for k in 0..n {
            let i = (offset + k) % n;
            if tried & (1u64 << i) != 0 || self.replicas[i].health() != EngineHealth::Ready {
                continue;
            }
            let depth = self.replicas[i].queue_depth();
            if best.is_none_or(|(_, d)| depth < d) {
                best = Some((i, depth));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Dispatches a filled request to the least-loaded Ready replica,
    /// blocking on that replica's queue if full. Falls over to the next
    /// replica if the chosen one starts draining mid-submit.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit`]; [`NeoError::Shutdown`] when no replica
    /// is ready.
    pub fn submit(&self, req: &Arc<Request>) -> Result<()> {
        let mut tried = 0u64;
        loop {
            let Some(i) = self.pick(tried) else {
                return Err(NeoError::Shutdown);
            };
            match self.replicas[i].submit(req) {
                Err(NeoError::Shutdown) => tried |= 1u64 << i,
                other => return other,
            }
        }
    }

    /// Non-blocking dispatch: tries Ready replicas from least loaded
    /// upward; a replica that sheds by rejecting ([`NeoError::Busy`])
    /// makes the dispatcher move on to the next — admission fails only
    /// when every replica is saturated. This is admission-side work
    /// spreading; queue-side imbalance is handled by stealing.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::try_submit`]; the final [`NeoError::Busy`]
    /// carries the fleet-wide queue depth.
    pub fn try_submit(&self, req: &Arc<Request>) -> Result<()> {
        let mut tried = 0u64;
        let mut saturated = false;
        loop {
            let Some(i) = self.pick(tried) else {
                return if saturated {
                    Err(NeoError::Busy { queue_depth: self.queue_depth() })
                } else {
                    Err(NeoError::Shutdown)
                };
            };
            match self.replicas[i].try_submit(req) {
                Err(NeoError::Busy { .. }) => {
                    saturated = true;
                    tried |= 1u64 << i;
                }
                Err(NeoError::Shutdown) => tried |= 1u64 << i,
                other => return other,
            }
        }
    }

    /// One-shot convenience mirroring [`ServeEngine::infer`].
    ///
    /// # Errors
    ///
    /// Propagates submit/execution failures.
    pub fn infer(&self, input: &Tensor) -> Result<Vec<Tensor>> {
        let req = self.make_request();
        req.fill(input)?;
        self.submit(&req)?;
        req.wait()?;
        req.with_outputs(|outs| outs.to_vec())
    }

    /// Fleet + per-replica statistics snapshot.
    pub fn report(&self) -> ShardReport {
        ShardReport {
            fleet: serve::merged_report(&self.replicas, self.started.elapsed().as_secs_f64()),
            replicas: self.replicas.iter().map(ServeEngine::report).collect(),
        }
    }

    /// Drains every replica **concurrently**, each against the full
    /// `budget` — a fleet of K replicas stops within one budget, not K
    /// budgets, and no replica inherits a predecessor's leftovers.
    pub fn shutdown_within(&self, budget: Duration) {
        std::thread::scope(|s| {
            for e in &self.replicas {
                s.spawn(move || e.shutdown_within(budget));
            }
        });
    }

    /// Unbounded concurrent drain of every replica (also runs on drop).
    pub fn shutdown(&self) {
        std::thread::scope(|s| {
            for e in &self.replicas {
                s.spawn(move || e.shutdown());
            }
        });
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("replicas", &self.replicas.len())
            .field("health", &self.health())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions, CpuTarget, LatencyClass, OptLevel, PoolChoice};
    use neocpu_graph::GraphBuilder;
    use neocpu_tensor::Layout;

    fn batched_module(batch: usize) -> Arc<Module> {
        let mut b = GraphBuilder::new(23);
        let x = b.input([batch, 4, 8, 8]);
        let c = b.conv_bn_relu(x, 8, 3, 1, 1);
        let p = b.max_pool(c, 2, 2, 0);
        let f = b.flatten(p);
        let d = b.dense(f, 5);
        let s = b.softmax(d);
        let g = b.finish(vec![s]);
        let opts = CompileOptions::level(OptLevel::O2).with_pool(PoolChoice::Sequential);
        Arc::new(compile(&g, &CpuTarget::host(), &opts).unwrap())
    }

    fn shard_opts() -> ServeOptions {
        ServeOptions { workers: 1, ..Default::default() }
    }

    #[test]
    fn sharded_results_match_direct_run() {
        let m = batched_module(2);
        let shard = ShardedEngine::new(Arc::clone(&m), 2, &shard_opts()).unwrap();
        assert_eq!(shard.replicas(), 2);
        assert_eq!(shard.health(), EngineHealth::Ready);
        let img = Tensor::random([1, 4, 8, 8], Layout::Nchw, 9, 1.0).unwrap();
        let outs = shard.infer(&img).unwrap();

        let mut stacked = Tensor::zeros([2, 4, 8, 8], Layout::Nchw).unwrap();
        let n = img.data().len();
        stacked.data_mut()[..n].copy_from_slice(img.data());
        let img2 = img.data().to_vec();
        stacked.data_mut()[n..].copy_from_slice(&img2);
        let direct = m.run(std::slice::from_ref(&stacked)).unwrap();
        assert_eq!(outs[0].data(), &direct[0].data()[..outs[0].data().len()]);
        shard.shutdown();
        assert_eq!(shard.health(), EngineHealth::Stopped);
    }

    #[test]
    fn invalid_replica_counts_are_config_errors() {
        let m = batched_module(2);
        for n in [0, MAX_REPLICAS + 1] {
            let err = ShardedEngine::new(Arc::clone(&m), n, &shard_opts()).unwrap_err();
            assert!(matches!(err, NeoError::Config(_)), "unexpected: {err}");
        }
    }

    #[test]
    fn merged_percentiles_stay_nan_on_empty_and_merge_counters() {
        let shard = ShardedEngine::new(batched_module(2), 2, &shard_opts()).unwrap();
        let rep = shard.report();
        assert_eq!(rep.replicas.len(), 2);
        assert_eq!(rep.fleet.completed, 0);
        assert_eq!(rep.fleet.latency_samples, 0);
        assert!(
            rep.fleet.p50_ms.is_nan() && rep.fleet.p95_ms.is_nan() && rep.fleet.p99_ms.is_nan(),
            "merged percentiles over zero samples must be NaN: {}",
            rep.fleet
        );
        assert_eq!(rep.fleet.workers, 2, "fleet workers are summed across replicas");

        let img = Tensor::random([1, 4, 8, 8], Layout::Nchw, 2, 1.0).unwrap();
        for _ in 0..4 {
            shard.infer(&img).unwrap();
        }
        let rep = shard.report();
        assert_eq!(rep.fleet.completed, 4);
        assert_eq!(
            rep.fleet.completed,
            rep.replicas.iter().map(|r| r.completed).sum::<u64>(),
            "fleet counters are the sum of replica counters"
        );
        assert_eq!(
            rep.fleet.latency_samples,
            rep.replicas.iter().map(|r| r.latency_samples).sum::<usize>(),
            "fleet percentiles pool every replica's raw samples"
        );
        assert!(rep.fleet.p50_ms > 0.0);
        shard.shutdown();
    }

    #[test]
    fn idle_replica_steals_from_a_busy_sibling() {
        // Build the fleet, then submit a pile of requests *directly* to
        // replica 0, bypassing the dispatcher. Replica 0's single worker
        // cannot keep its queue empty while running batches, so replica
        // 1's idle worker must claim some of the backlog via stealing.
        let m = batched_module(1); // B = 1: every request is its own batch
        let shard = ShardedEngine::new(m, 2, &shard_opts()).unwrap();
        const N: usize = 96;
        let img = Tensor::random([1, 4, 8, 8], Layout::Nchw, 7, 1.0).unwrap();
        let reqs: Vec<Arc<Request>> = (0..N)
            .map(|_| {
                let r = shard.make_request();
                r.fill(&img).unwrap();
                shard.replica(0).submit(&r).unwrap();
                r
            })
            .collect();
        for r in &reqs {
            r.wait().unwrap();
        }
        let rep = shard.report();
        assert_eq!(rep.fleet.completed, N as u64, "{}", rep.fleet);
        assert!(
            rep.replicas[1].stolen > 0,
            "replica 1 never stole from replica 0's backlog: {}",
            rep.fleet
        );
        assert!(
            rep.replicas[1].completed > 0,
            "stolen requests must complete on the stealing replica"
        );
        shard.shutdown();
    }

    #[test]
    fn fleet_survives_a_stopped_replica() {
        // Kill replica 0 outright; dispatch must route around it and the
        // fleet keeps serving on replica 1.
        let shard = ShardedEngine::new(batched_module(2), 2, &shard_opts()).unwrap();
        shard.replica(0).shutdown();
        assert_eq!(shard.replica(0).health(), EngineHealth::Stopped);
        assert_eq!(shard.health(), EngineHealth::Ready, "fleet serves while any replica serves");
        let img = Tensor::random([1, 4, 8, 8], Layout::Nchw, 4, 1.0).unwrap();
        for _ in 0..6 {
            shard.infer(&img).unwrap();
        }
        let rep = shard.report();
        assert_eq!(rep.fleet.completed, 6);
        assert_eq!(rep.replicas[0].completed, 0, "a stopped replica must not be dispatched to");
        assert_eq!(rep.replicas[1].completed, 6);
        shard.shutdown();
        assert_eq!(shard.health(), EngineHealth::Stopped);
    }

    #[test]
    fn interactive_request_caps_batch_formation() {
        // With a batch-4 module and a long batch timeout, a lone *bulk*
        // request makes the worker wait out the timeout hoping to
        // coalesce; a lone *interactive* request must be dispatched
        // immediately instead. The contrast is deterministic: only the
        // latency class changes between the two submissions.
        let m = batched_module(4);
        let timeout = Duration::from_millis(600);
        let opts = ServeOptions { batch_timeout: timeout, ..shard_opts() };
        let shard = ShardedEngine::new(m, 1, &opts).unwrap();
        let img = Tensor::random([1, 4, 8, 8], Layout::Nchw, 6, 1.0).unwrap();

        let bulk = shard.make_request();
        bulk.fill(&img).unwrap();
        let t0 = Instant::now();
        shard.submit(&bulk).unwrap();
        bulk.wait().unwrap();
        let bulk_elapsed = t0.elapsed();

        let hot = shard.make_request();
        hot.set_latency_class(LatencyClass::Interactive).unwrap();
        hot.fill(&img).unwrap();
        let t0 = Instant::now();
        shard.submit(&hot).unwrap();
        hot.wait().unwrap();
        let hot_elapsed = t0.elapsed();

        assert!(
            bulk_elapsed >= timeout,
            "a lone bulk request should wait out the batch timeout ({bulk_elapsed:?})"
        );
        assert!(
            hot_elapsed < timeout / 2,
            "an interactive request must not wait for batch coalescing \
             (took {hot_elapsed:?}, timeout {timeout:?})"
        );
        shard.shutdown();
    }

    #[test]
    fn interactive_class_overtakes_queued_bulk_work() {
        // Heavier module so the single worker holds a real backlog, then
        // an interactive request submitted last must overtake the queued
        // bulk requests via the high-priority lane.
        let mut b = GraphBuilder::new(31);
        let x = b.input([1, 16, 32, 32]);
        let c1 = b.conv_bn_relu(x, 32, 3, 1, 1);
        let c2 = b.conv_bn_relu(c1, 32, 3, 1, 1);
        let g = b.finish(vec![c2]);
        let opts = CompileOptions::level(OptLevel::O2).with_pool(PoolChoice::Sequential);
        let m = Arc::new(compile(&g, &CpuTarget::host(), &opts).unwrap());

        let shard = ShardedEngine::new(m, 1, &shard_opts()).unwrap();
        let img = Tensor::random([1, 16, 32, 32], Layout::Nchw, 6, 1.0).unwrap();
        let bulk: Vec<Arc<Request>> = (0..24)
            .map(|_| {
                let r = shard.make_request();
                r.fill(&img).unwrap();
                shard.submit(&r).unwrap();
                r
            })
            .collect();
        let hot = shard.make_request();
        hot.set_latency_class(LatencyClass::Interactive).unwrap();
        hot.fill(&img).unwrap();
        shard.submit(&hot).unwrap();
        hot.wait().unwrap();
        // The interactive request finished while bulk work was still
        // queued — it did not wait for the tail of the bulk backlog.
        let depth_at_hot_completion = shard.queue_depth();
        for r in &bulk {
            r.wait().unwrap();
        }
        assert!(
            depth_at_hot_completion > 0,
            "interactive request should complete while bulk work is still queued"
        );
        shard.shutdown();
    }

    #[test]
    fn two_engines_bind_disjoint_cores_by_default() {
        // The cross-engine pile-up regression: two engines constructed
        // independently must not pin their workers to the same cores when
        // the cpuset has room for both.
        let m = batched_module(2);
        let opts = ServeOptions { workers: 1, ..Default::default() };
        let e1 = ServeEngine::new(Arc::clone(&m), &opts).unwrap();
        let e2 = ServeEngine::new(Arc::clone(&m), &opts).unwrap();
        // Engines must have claimed *some* core set wherever binding is
        // supported at all.
        let (Some(s1), Some(s2)) = (e1.core_set(), e2.core_set()) else {
            // No affinity support on this host; nothing to assert.
            return;
        };
        let total = s1.len() + s2.len();
        if affinity::allowed_cores().len() >= total {
            assert!(
                s1.is_disjoint(s2),
                "two engines reserved overlapping cores {:?} / {:?} on a cpuset with room",
                s1.cores(),
                s2.cores()
            );
        }
        // Wherever the kernel accepted the binding, the observed masks
        // must lie inside each engine's own set — and therefore be
        // disjoint across engines when the sets are.
        let deadline = Instant::now() + Duration::from_secs(5);
        let observed = |e: &ServeEngine| -> Vec<usize> {
            e.bound_cores().into_iter().flatten().collect()
        };
        // Workers record their mask right after spawn; give them a beat.
        while (observed(&e1).is_empty() || observed(&e2).is_empty())
            && Instant::now() < deadline
            && cfg!(all(target_os = "linux", target_arch = "x86_64"))
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        for (e, set) in [(&e1, s1), (&e2, s2)] {
            for core in observed(e) {
                assert!(
                    set.contains(core),
                    "worker bound to core {core}, outside its engine's set {:?}",
                    set.cores()
                );
            }
        }
        e1.shutdown();
        e2.shutdown();
    }
}
