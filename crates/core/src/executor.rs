//! The module executor: a topological interpreter over the compiled graph,
//! running on statically planned memory.
//!
//! At compile time the memory planner (`crate::memory`) assigns every
//! intermediate value an offset into a single 64-byte-aligned arena, with
//! in-place reuse (Relu/Dropout/Flatten/residual-Add) decided by liveness
//! analysis rather than runtime reference juggling. A [`RunContext`] holds
//! that arena plus one prebuilt tensor *view* per node, so a warm inference
//! performs **zero heap allocations** for intermediates: kernels write
//! straight into planned slices, conv padding lands in planned scratch, and
//! fully-overwritten outputs skip the memset a fresh `Tensor::zeros` would
//! pay.
//!
//! [`Module::run`] keeps its shareable `&self` signature by pooling
//! contexts behind a mutex; latency-critical callers create their own via
//! [`Module::make_context`] and drive [`Module::run_with`] directly.
//!
//! Every node executes inside a **panic boundary**: an unwind out of kernel
//! or thread-pool code is caught and converted into
//! [`NeoError::Panicked`] with the node's identity, leaving the module and
//! its pool (and the borrowed context) reusable for the next request.
//! Kernel and tensor errors are likewise enriched with node context
//! ([`NeoError::AtNode`]) on their way out.
//!
//! [`Module::run_reference`] keeps the old clone-everything interpreter
//! alive as the correctness oracle the plan is tested against.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use neocpu_graph::{Graph, Op};
use neocpu_kernels::conv::{
    conv2d_nchw_direct, conv2d_nchwc, conv2d_nchwc_u8, depthwise_conv2d_nchwc,
    depthwise_conv2d_nchwc_u8, ConvQuant, Epilogue,
};
use neocpu_kernels::elementwise::{
    add, add_assign, batchnorm_fold, concat_channels, relu_inplace, scale_shift,
};
use neocpu_kernels::pool2d::{global_avg_pool, pool2d};
use neocpu_kernels::quantize::{dequantize_slice, f32_slice_as_u8_mut, quantize_slice};
use neocpu_kernels::{dense, softmax};
use neocpu_tensor::{
    transform::{to_layout, to_layout_into},
    Arena, DType, Layout, Shape, Tensor,
};
use neocpu_threadpool::Parallelism;

use crate::memory::{plan_memory, MemoryPlan, MemoryReport};
use crate::{NeoError, Result};

/// Distinguishes modules so a [`RunContext`] can never be replayed against
/// a module it was not planned for.
static NEXT_MODULE_UID: AtomicU64 = AtomicU64::new(1);

/// Aggregated wall time of one operator kind during a profiled inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpProfile {
    /// Operator name (e.g. `"conv2d"`, `"layout_transform"`).
    pub op: &'static str,
    /// Number of nodes of this kind executed.
    pub count: usize,
    /// Total wall time across those nodes, milliseconds.
    pub total_ms: f64,
}

/// Reusable per-inference execution state: the planned arena and one tensor
/// view per node at its planned offset.
///
/// Create with [`Module::make_context`], drive with [`Module::run_with`].
/// Creation allocates (the arena and the view table); every run afterwards
/// allocates nothing. A context is bound to the module that made it.
pub struct RunContext {
    module_uid: u64,
    arena: Arc<Arena>,
    /// One view per node, at the node's planned offset with its inferred
    /// shape/layout. Aliased views (Flatten/Dropout/in-place ops) share
    /// offsets by plan; the executor only ever *accesses* disjoint ones.
    values: Vec<Tensor>,
    output_ids: Vec<usize>,
    /// Reusable fan-in pointer buffer for `Concat` nodes, sized at context
    /// creation to the widest concat so warm runs never reallocate it.
    /// Holds no pointers outside a single node's execution (cleared after
    /// use), which is what makes the `Send` impl below sound.
    fanin: Vec<*const Tensor>,
}

// SAFETY: every field but `fanin` is `Send` by composition (`Arc<Arena>`
// and arena-view tensors are `Send + Sync`). `fanin` is an empty scratch
// buffer whenever the context is at rest — pointers are written and
// cleared within one `exec_node_planned` call — so moving the context
// across threads never moves live aliases.
unsafe impl Send for RunContext {}

impl RunContext {
    /// Views of the graph outputs from the most recent successful
    /// [`Module::run_with`] on this context.
    ///
    /// The views borrow the context's arena: they are valid until the next
    /// run reuses the storage. Clone a view to detach a snapshot.
    pub fn outputs(&self) -> Vec<&Tensor> {
        self.output_ids.iter().map(|&o| &self.values[o]).collect()
    }

    /// View of output `i`, if it exists (see [`RunContext::outputs`]).
    pub fn output(&self, i: usize) -> Option<&Tensor> {
        self.output_ids.get(i).map(|&o| &self.values[o])
    }

    /// Size of the planned arena in bytes (the module's peak intermediate
    /// memory).
    pub fn arena_bytes(&self) -> usize {
        self.arena.len() * 4
    }
}

impl std::fmt::Debug for RunContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunContext")
            .field("arena_bytes", &self.arena_bytes())
            .field("values", &self.values.len())
            .finish()
    }
}

/// A compiled, executable model.
pub struct Module {
    graph: Graph,
    shapes: Vec<Shape>,
    layouts: Vec<Layout>,
    dtypes: Vec<DType>,
    pool: Arc<dyn Parallelism>,
    max_lanes: usize,
    plan: MemoryPlan,
    uid: u64,
    /// Idle contexts for [`Module::run`]; popped per call, pushed back
    /// after (also on error — a failed run leaves a context reusable).
    contexts: Mutex<Vec<RunContext>>,
}

impl Module {
    pub(crate) fn new(
        graph: Graph,
        shapes: Vec<Shape>,
        layouts: Vec<Layout>,
        pool: Arc<dyn Parallelism>,
        max_lanes: usize,
    ) -> Result<Self> {
        let dtypes = neocpu_graph::infer_dtypes(&graph)?;
        let plan = plan_memory(&graph, &shapes, &layouts, &dtypes)?;
        Ok(Self {
            graph,
            shapes,
            layouts,
            dtypes,
            pool,
            max_lanes,
            plan,
            uid: NEXT_MODULE_UID.fetch_add(1, Ordering::Relaxed),
            contexts: Mutex::new(Vec::new()),
        })
    }

    /// The optimized graph this module executes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Replaces the executor's thread pool (benchmark instrumentation).
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<dyn Parallelism>) -> Self {
        self.pool = pool;
        self
    }

    /// Number of `LayoutTransform` nodes on the inference path (the §3.2
    /// metric the ablation reports).
    pub fn transform_count(&self) -> usize {
        self.graph.transform_count()
    }

    /// Executors participating in parallel regions.
    pub fn threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// The static memory plan's statistics (planned peak vs. naive
    /// allocation, reuse decisions, scratch reservation).
    pub fn memory_report(&self) -> &MemoryReport {
        &self.plan.report
    }

    /// Declared shapes of the graph's `Input` nodes, in consumption order
    /// (the order [`Module::run`] matches its `inputs` slice against).
    pub fn input_shapes(&self) -> Vec<Shape> {
        self.graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, Op::Input { .. }))
            .map(|(id, _)| self.shapes[id].clone())
            .collect()
    }

    /// Shapes of the graph outputs, in output order.
    pub fn output_shapes(&self) -> Vec<Shape> {
        self.graph.outputs.iter().map(|&o| self.shapes[o].clone()).collect()
    }

    /// Layouts the graph's `Input` nodes expect, parallel to
    /// [`Module::input_shapes`].
    pub(crate) fn input_layouts(&self) -> Vec<Layout> {
        self.graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, Op::Input { .. }))
            .map(|(id, _)| self.layouts[id])
            .collect()
    }

    /// Layouts of the graph outputs, parallel to [`Module::output_shapes`].
    pub(crate) fn output_layouts(&self) -> Vec<Layout> {
        self.graph.outputs.iter().map(|&o| self.layouts[o]).collect()
    }

    /// The module's unique id (contexts and serve requests are bound to it).
    pub(crate) fn uid(&self) -> u64 {
        self.uid
    }

    /// Creates a fresh execution context for this module.
    ///
    /// This is the only allocating step of steady-state serving: allocate
    /// one context per concurrent in-flight inference, then reuse it via
    /// [`Module::run_with`] for allocation-free runs. ([`Module::run`] does
    /// exactly that internally with a pooled context.)
    pub fn make_context(&self) -> RunContext {
        let arena = Arena::new(self.plan.arena_len);
        let values: Vec<Tensor> = (0..self.graph.len())
            .map(|id| {
                // SAFETY: the planner guarantees that views which are ever
                // accessed simultaneously occupy disjoint arena ranges
                // (verified at plan time); in-bounds is re-checked here.
                unsafe {
                    Tensor::arena_view_dtyped(
                        arena.clone(),
                        self.plan.offsets[id],
                        self.shapes[id].clone(),
                        self.layouts[id],
                        self.dtypes[id],
                    )
                }
                .expect("planned arena view was validated at compile time")
            })
            .collect();
        let max_fanin = self
            .graph
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Concat))
            .map(|n| n.inputs.len())
            .max()
            .unwrap_or(0);
        RunContext {
            module_uid: self.uid,
            arena,
            values,
            output_ids: self.graph.outputs.clone(),
            fanin: Vec::with_capacity(max_fanin),
        }
    }

    /// Runs one inference and reports per-operator wall time, aggregated by
    /// operator name — the profile that shows where transforms and CONVs
    /// spend the inference budget.
    ///
    /// # Errors
    ///
    /// Returns an error on input mismatch or kernel failure.
    pub fn run_profiled(&self, inputs: &[Tensor]) -> Result<(Vec<Tensor>, Vec<OpProfile>)> {
        let mut per_op: std::collections::HashMap<&'static str, OpProfile> =
            std::collections::HashMap::new();
        let mut probe = |name: &'static str, secs: f64| {
            let e = per_op.entry(name).or_insert(OpProfile { op: name, count: 0, total_ms: 0.0 });
            e.count += 1;
            e.total_ms += secs * 1e3;
        };
        let mut ctx = self.checkout_context();
        let result = self.run_ctx(&mut ctx, inputs, Some(&mut probe));
        let outputs = result.map(|()| ctx.outputs().into_iter().cloned().collect());
        self.contexts.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(ctx);
        let outputs = outputs?;
        let mut profiles: Vec<OpProfile> = per_op.into_values().collect();
        profiles.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));
        Ok((outputs, profiles))
    }

    /// Runs one inference.
    ///
    /// `inputs` are matched to the graph's `Input` nodes in id order and
    /// must be `NCHW` (rank 4) or `NC` (rank 2) tensors of the declared
    /// shapes; surplus tensors are rejected.
    ///
    /// Internally borrows a pooled [`RunContext`], so intermediates cost
    /// zero allocations on warm runs; only the returned output tensors are
    /// fresh copies (detached from the context so the next run cannot
    /// overwrite them).
    ///
    /// # Errors
    ///
    /// Returns an error on input mismatch or kernel failure. A panic in
    /// kernel or thread-pool code is caught at the per-node boundary and
    /// returned as [`NeoError::Panicked`]; the module stays usable.
    pub fn run(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        let mut ctx = self.checkout_context();
        let result = self.run_ctx(&mut ctx, inputs, None);
        let outputs = result.map(|()| ctx.outputs().into_iter().cloned().collect());
        self.contexts.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(ctx);
        outputs
    }

    /// Runs one inference on a caller-owned context, allocation-free.
    ///
    /// Outputs stay inside `ctx` as arena views — read them with
    /// [`RunContext::outputs`] / [`RunContext::output`] before the next run
    /// on the same context overwrites the storage.
    ///
    /// # Errors
    ///
    /// As [`Module::run`]; additionally rejects a context created by a
    /// different module. After an error the context remains reusable.
    pub fn run_with(&self, ctx: &mut RunContext, inputs: &[Tensor]) -> Result<()> {
        self.run_ctx(ctx, inputs, None)
    }

    fn checkout_context(&self) -> RunContext {
        let pooled =
            self.contexts.lock().unwrap_or_else(std::sync::PoisonError::into_inner).pop();
        pooled.unwrap_or_else(|| self.make_context())
    }

    fn run_ctx(
        &self,
        ctx: &mut RunContext,
        inputs: &[Tensor],
        mut probe: Option<&mut dyn FnMut(&'static str, f64)>,
    ) -> Result<()> {
        if ctx.module_uid != self.uid {
            return Err(NeoError::BadInput(
                "RunContext was created by a different Module".into(),
            ));
        }
        let g = &self.graph;
        let mut next_input = 0usize;
        #[cfg(feature = "fault-injection")]
        let pool_wrap = crate::faults::WorkerFaultPar(&*self.pool);
        #[cfg(feature = "fault-injection")]
        let par: &dyn Parallelism = &pool_wrap;
        #[cfg(not(feature = "fault-injection"))]
        let par: &dyn Parallelism = &*self.pool;

        for id in 0..g.len() {
            let node = &g.nodes[id];
            let t0 = probe.is_some().then(std::time::Instant::now);
            // Panic boundary: an unwind from kernel code (including one
            // re-raised by the pool's own containment) becomes a typed
            // error instead of tearing down the serving thread.
            let unwound = panic::catch_unwind(AssertUnwindSafe(|| {
                self.exec_node_planned(id, node, ctx, inputs, &mut next_input, par)
            }));
            match unwound {
                Ok(Ok(())) => {}
                Ok(Err(e)) => return Err(at_node(id, node.op.name(), e)),
                Err(payload) => {
                    return Err(NeoError::Panicked {
                        node: id,
                        op: node.op.name(),
                        message: panic_message(payload.as_ref()),
                    })
                }
            }
            if let (Some(p), Some(t0)) = (probe.as_deref_mut(), t0) {
                p(node.op.name(), t0.elapsed().as_secs_f64());
            }
        }

        if next_input != inputs.len() {
            return Err(NeoError::BadInput(format!(
                "graph consumes {next_input} input tensor(s) but {} were provided",
                inputs.len()
            )));
        }
        Ok(())
    }

    /// Executes one node into its planned arena region. Called inside the
    /// per-node panic boundary of [`Module::run_ctx`].
    fn exec_node_planned(
        &self,
        id: usize,
        node: &neocpu_graph::Node,
        ctx: &mut RunContext,
        inputs: &[Tensor],
        next_input: &mut usize,
        par: &dyn Parallelism,
    ) -> Result<()> {
        let g = &self.graph;
        if !matches!(node.op, Op::Input { .. } | Op::LayoutTransform { .. }) {
            crate::faults::fire(crate::faults::KERNEL_ENTRY)?;
        }
        // The ops that allocated a fresh output buffer in the pre-planned
        // executor keep their allocation failpoint, now modelling "output
        // region acquisition" so fault tests exercise the same sites.
        if matches!(
            node.op,
            Op::Conv2d { .. }
                | Op::ScaleShift { .. }
                | Op::BatchNorm { .. }
                | Op::Pool { .. }
                | Op::GlobalAvgPool
                | Op::Add
                | Op::Concat
                | Op::Dense { .. }
                | Op::Softmax
                | Op::Quantize { .. }
                | Op::Dequantize { .. }
        ) {
            crate::faults::fire(crate::faults::TENSOR_ALLOC)?;
        }
        let arena = &ctx.arena;
        let fanin = &mut ctx.fanin;
        // Split so earlier values stay readable while this node's view is
        // written: planner disjointness makes the aliased cases (in-place,
        // Flatten/Dropout) never touch both sides at once.
        let (before, rest) = ctx.values.split_at_mut(id);
        let out = &mut rest[0];
        match &node.op {
            Op::Input { shape } => {
                let t = inputs
                    .get(*next_input)
                    .ok_or_else(|| NeoError::BadInput(format!("missing input #{next_input}")))?;
                *next_input += 1;
                if t.shape().dims() != &shape[..] {
                    return Err(NeoError::BadInput(format!(
                        "input #{} has shape {}, expected {:?}",
                        *next_input - 1,
                        t.shape(),
                        shape
                    )));
                }
                if t.layout() != self.layouts[id] {
                    return Err(NeoError::BadInput(format!(
                        "input #{} must be {}, got {}",
                        *next_input - 1,
                        self.layouts[id],
                        t.layout()
                    )));
                }
                out.data_mut().copy_from_slice(t.data());
            }
            Op::Conv2d { params, weight, bias, schedule, relu, residual, quant } => {
                let x = &before[node.inputs[0]];
                let res = residual.then(|| &before[node.inputs[1]]);
                let bias_data = bias.map(|b| g.params[b].data());
                let epi = Epilogue { bias: bias_data, relu: *relu, residual: res };
                match (schedule, quant) {
                    (Some(s), Some(q)) => {
                        // SAFETY: as below; the planner reserved the region
                        // in u8 elements for a quantized conv's input, so
                        // reinterpret the f32 slots and trim to exact size.
                        let scratch = self.plan.scratch[id].map(|(off, len)| {
                            let slots = DType::U8.slots(len);
                            let raw = unsafe { arena.slice_mut(off, slots) };
                            &mut f32_slice_as_u8_mut(raw)[..len]
                        });
                        let cq = ConvQuant {
                            mult: g.params[q.mult].data(),
                            zero_point: q.in_zp,
                        };
                        if params.groups > 1 {
                            depthwise_conv2d_nchwc_u8(
                                x,
                                &g.params[*weight],
                                out,
                                params,
                                s,
                                &cq,
                                &epi,
                                par,
                                self.max_lanes,
                                scratch,
                            )?;
                        } else {
                            conv2d_nchwc_u8(
                                x,
                                &g.params[*weight],
                                out,
                                params,
                                s,
                                &cq,
                                &epi,
                                par,
                                self.max_lanes,
                                scratch,
                            )?;
                        }
                    }
                    (None, Some(_)) => {
                        return Err(NeoError::Internal(
                            "quantized conv without a schedule".into(),
                        ));
                    }
                    (Some(s), None) => {
                        // SAFETY: the scratch region is live only at this
                        // node, so it overlaps no value view accessed here
                        // (planner invariant, verified at compile time).
                        let scratch = self.plan.scratch[id]
                            .map(|(off, len)| unsafe { arena.slice_mut(off, len) });
                        if params.groups > 1 {
                            depthwise_conv2d_nchwc(
                                x,
                                &g.params[*weight],
                                out,
                                params,
                                s,
                                &epi,
                                par,
                                self.max_lanes,
                                scratch,
                            )?;
                        } else {
                            conv2d_nchwc(
                                x,
                                &g.params[*weight],
                                out,
                                params,
                                s,
                                &epi,
                                par,
                                self.max_lanes,
                                scratch,
                            )?;
                        }
                    }
                    (None, None) => {
                        conv2d_nchw_direct(x, &g.params[*weight], out, params, &epi, par)?;
                    }
                }
            }
            Op::Quantize { scale, zero_point } => {
                let x = &before[node.inputs[0]];
                quantize_slice(x.data(), out.data_u8_mut(), *scale, *zero_point);
            }
            Op::Dequantize { scale, zero_point } => {
                let x = &before[node.inputs[0]];
                dequantize_slice(x.data_u8(), out.data_mut(), *scale, *zero_point);
            }
            Op::ScaleShift { scale, shift } => {
                let x = &before[node.inputs[0]];
                scale_shift(x, out, g.params[*scale].data(), g.params[*shift].data(), par)?;
            }
            Op::BatchNorm { gamma, beta, mean, var, eps } => {
                // Normally folded away; kept total for un-simplified graphs.
                let (scale, shift) = batchnorm_fold(
                    g.params[*gamma].data(),
                    g.params[*beta].data(),
                    g.params[*mean].data(),
                    g.params[*var].data(),
                    *eps,
                );
                let x = &before[node.inputs[0]];
                scale_shift(x, out, &scale, &shift, par)?;
            }
            Op::Relu => {
                if self.plan.inplace[id].is_none() {
                    // Input storage outlives this node: work on a copy in
                    // the planned output region.
                    out.data_mut().copy_from_slice(before[node.inputs[0]].data());
                }
                // In-place: `out` aliases the input's region, which already
                // holds the data — clamp it where it sits.
                relu_inplace(out, par);
            }
            // Aliased reinterpretations: the plan mapped the output view
            // onto the producer's storage; nothing moves at run time.
            Op::Dropout | Op::Flatten => {}
            Op::Pool { params, kind } => {
                let x = &before[node.inputs[0]];
                pool2d(x, out, params, *kind, par)?;
            }
            Op::GlobalAvgPool => {
                let x = &before[node.inputs[0]];
                global_avg_pool(x, out, par)?;
            }
            Op::Add => match self.plan.inplace[id] {
                // `out` aliases input `pos`; accumulate the other operand
                // into it without ever forming an aliased `&`/`&mut` pair.
                Some(pos) => {
                    let other = &before[node.inputs[1 - pos]];
                    add_assign(out, other, par)?;
                }
                None => {
                    let a = &before[node.inputs[0]];
                    let b = &before[node.inputs[1]];
                    add(a, b, out, par)?;
                }
            },
            Op::Concat => {
                fanin.clear();
                fanin.extend(node.inputs.iter().map(|&i| std::ptr::from_ref(&before[i])));
                // SAFETY: `&Tensor` and `*const Tensor` have identical
                // layout, and each pointer was derived from a reference
                // that stays live for this whole call.
                let ins: &[&Tensor] = unsafe {
                    std::slice::from_raw_parts(fanin.as_ptr().cast::<&Tensor>(), fanin.len())
                };
                let result = concat_channels(ins, out, par);
                fanin.clear();
                result?;
            }
            Op::Dense { weight, bias, relu } => {
                let x = &before[node.inputs[0]];
                let bias_data = bias.map(|b| g.params[b].data());
                dense::dense(x, &g.params[*weight], out, bias_data, *relu, par)?;
            }
            Op::Softmax => {
                let x = &before[node.inputs[0]];
                softmax::softmax(x, out, par)?;
            }
            Op::LayoutTransform { .. } => {
                crate::faults::fire(crate::faults::LAYOUT_TRANSFORM)?;
                let x = &before[node.inputs[0]];
                to_layout_into(x, out)?;
            }
        }
        Ok(())
    }

    /// Runs one inference through the **naive reference interpreter**: every
    /// node output is a freshly allocated tensor ([`Tensor::uninit`] — all
    /// kernels overwrite their outputs in full), nothing is reused in
    /// place, and all values live to the end of the run.
    ///
    /// This is the oracle the static memory plan is validated against: for
    /// any module and inputs, [`Module::run`] must produce **bit-identical**
    /// outputs to this method (same kernels, same order — only the storage
    /// strategy differs).
    ///
    /// # Errors
    ///
    /// As [`Module::run`].
    pub fn run_reference(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        self.run_reference_probe(inputs, &mut |_, _| {})
    }

    /// [`Module::run_reference`] with a per-node observation hook: `probe`
    /// is called with each node's id and freshly computed value, in
    /// execution order. This is how int8 calibration sees every conv input
    /// without the interpreter retaining the whole value table for the
    /// caller.
    ///
    /// # Errors
    ///
    /// As [`Module::run_reference`].
    pub fn run_reference_probe(
        &self,
        inputs: &[Tensor],
        probe: &mut dyn FnMut(usize, &Tensor),
    ) -> Result<Vec<Tensor>> {
        let g = &self.graph;
        let mut values: Vec<Option<Tensor>> = vec![None; g.len()];
        let mut next_input = 0usize;
        #[cfg(feature = "fault-injection")]
        let pool_wrap = crate::faults::WorkerFaultPar(&*self.pool);
        #[cfg(feature = "fault-injection")]
        let par: &dyn Parallelism = &pool_wrap;
        #[cfg(not(feature = "fault-injection"))]
        let par: &dyn Parallelism = &*self.pool;

        for id in 0..g.len() {
            let node = &g.nodes[id];
            let unwound = panic::catch_unwind(AssertUnwindSafe(|| {
                self.exec_node_reference(id, node, &values, inputs, &mut next_input, par)
            }));
            let out = match unwound {
                Ok(Ok(t)) => t,
                Ok(Err(e)) => return Err(at_node(id, node.op.name(), e)),
                Err(payload) => {
                    return Err(NeoError::Panicked {
                        node: id,
                        op: node.op.name(),
                        message: panic_message(payload.as_ref()),
                    })
                }
            };
            probe(id, &out);
            values[id] = Some(out);
        }

        if next_input != inputs.len() {
            return Err(NeoError::BadInput(format!(
                "graph consumes {next_input} input tensor(s) but {} were provided",
                inputs.len()
            )));
        }

        g.outputs
            .iter()
            .map(|&o| {
                values[o]
                    .clone()
                    .ok_or_else(|| NeoError::Internal(format!("output {o} not computed")))
            })
            .collect()
    }

    /// Allocates the output buffer of node `id` for the reference path —
    /// uninitialized, because every kernel writes its output in full.
    fn alloc(&self, id: usize) -> Result<Tensor> {
        crate::faults::fire(crate::faults::TENSOR_ALLOC)?;
        Ok(Tensor::uninit_dtyped(self.shapes[id].clone(), self.layouts[id], self.dtypes[id])?)
    }

    /// Executes one node of the reference interpreter.
    fn exec_node_reference(
        &self,
        id: usize,
        node: &neocpu_graph::Node,
        values: &[Option<Tensor>],
        inputs: &[Tensor],
        next_input: &mut usize,
        par: &dyn Parallelism,
    ) -> Result<Tensor> {
        let g = &self.graph;
        if !matches!(node.op, Op::Input { .. } | Op::LayoutTransform { .. }) {
            crate::faults::fire(crate::faults::KERNEL_ENTRY)?;
        }
        let value = |vid: usize| -> Result<&Tensor> {
            values[vid]
                .as_ref()
                .ok_or_else(|| NeoError::Internal(format!("value {vid} not computed")))
        };
        let out = match &node.op {
            Op::Input { shape } => {
                let t = inputs
                    .get(*next_input)
                    .ok_or_else(|| NeoError::BadInput(format!("missing input #{next_input}")))?;
                *next_input += 1;
                if t.shape().dims() != &shape[..] {
                    return Err(NeoError::BadInput(format!(
                        "input #{} has shape {}, expected {:?}",
                        *next_input - 1,
                        t.shape(),
                        shape
                    )));
                }
                if t.layout() != self.layouts[id] {
                    return Err(NeoError::BadInput(format!(
                        "input #{} must be {}, got {}",
                        *next_input - 1,
                        self.layouts[id],
                        t.layout()
                    )));
                }
                t.clone()
            }
            Op::Conv2d { params, weight, bias, schedule, relu, residual, quant } => {
                let x = value(node.inputs[0])?;
                let res = if *residual { Some(value(node.inputs[1])?) } else { None };
                let bias_data = bias.map(|b| g.params[b].data());
                let epi = Epilogue { bias: bias_data, relu: *relu, residual: res };
                let mut out = self.alloc(id)?;
                match (schedule, quant) {
                    (Some(s), Some(q)) => {
                        let cq = ConvQuant {
                            mult: g.params[q.mult].data(),
                            zero_point: q.in_zp,
                        };
                        if params.groups > 1 {
                            depthwise_conv2d_nchwc_u8(
                                x,
                                &g.params[*weight],
                                &mut out,
                                params,
                                s,
                                &cq,
                                &epi,
                                par,
                                self.max_lanes,
                                None,
                            )?;
                        } else {
                            conv2d_nchwc_u8(
                                x,
                                &g.params[*weight],
                                &mut out,
                                params,
                                s,
                                &cq,
                                &epi,
                                par,
                                self.max_lanes,
                                None,
                            )?;
                        }
                    }
                    (None, Some(_)) => {
                        return Err(NeoError::Internal(
                            "quantized conv without a schedule".into(),
                        ));
                    }
                    (Some(s), None) if params.groups > 1 => {
                        depthwise_conv2d_nchwc(
                            x,
                            &g.params[*weight],
                            &mut out,
                            params,
                            s,
                            &epi,
                            par,
                            self.max_lanes,
                            None,
                        )?;
                    }
                    (Some(s), None) => {
                        conv2d_nchwc(
                            x,
                            &g.params[*weight],
                            &mut out,
                            params,
                            s,
                            &epi,
                            par,
                            self.max_lanes,
                            None,
                        )?;
                    }
                    (None, None) => {
                        conv2d_nchw_direct(x, &g.params[*weight], &mut out, params, &epi, par)?;
                    }
                }
                out
            }
            Op::Quantize { scale, zero_point } => {
                let x = value(node.inputs[0])?;
                let mut out = self.alloc(id)?;
                quantize_slice(x.data(), out.data_u8_mut(), *scale, *zero_point);
                out
            }
            Op::Dequantize { scale, zero_point } => {
                let x = value(node.inputs[0])?;
                let mut out = self.alloc(id)?;
                dequantize_slice(x.data_u8(), out.data_mut(), *scale, *zero_point);
                out
            }
            Op::ScaleShift { scale, shift } => {
                let x = value(node.inputs[0])?;
                let mut out = self.alloc(id)?;
                scale_shift(x, &mut out, g.params[*scale].data(), g.params[*shift].data(), par)?;
                out
            }
            Op::BatchNorm { gamma, beta, mean, var, eps } => {
                let (scale, shift) = batchnorm_fold(
                    g.params[*gamma].data(),
                    g.params[*beta].data(),
                    g.params[*mean].data(),
                    g.params[*var].data(),
                    *eps,
                );
                let x = value(node.inputs[0])?;
                let mut out = self.alloc(id)?;
                scale_shift(x, &mut out, &scale, &shift, par)?;
                out
            }
            Op::Relu => {
                let mut t = value(node.inputs[0])?.clone();
                relu_inplace(&mut t, par);
                t
            }
            Op::Dropout => value(node.inputs[0])?.clone(),
            Op::Pool { params, kind } => {
                let x = value(node.inputs[0])?;
                let mut out = self.alloc(id)?;
                pool2d(x, &mut out, params, *kind, par)?;
                out
            }
            Op::GlobalAvgPool => {
                let x = value(node.inputs[0])?;
                let mut out = self.alloc(id)?;
                global_avg_pool(x, &mut out, par)?;
                out
            }
            Op::Add => {
                let a = value(node.inputs[0])?;
                let b = value(node.inputs[1])?;
                let mut out = self.alloc(id)?;
                add(a, b, &mut out, par)?;
                out
            }
            Op::Concat => {
                let ins: Vec<&Tensor> =
                    node.inputs.iter().map(|&i| value(i)).collect::<Result<_>>()?;
                let mut out = self.alloc(id)?;
                concat_channels(&ins, &mut out, par)?;
                out
            }
            Op::Flatten => {
                let x = value(node.inputs[0])?;
                x.reshaped(self.shapes[id].clone())?
            }
            Op::Dense { weight, bias, relu } => {
                let x = value(node.inputs[0])?;
                let bias_data = bias.map(|b| g.params[b].data());
                let mut out = self.alloc(id)?;
                dense::dense(x, &g.params[*weight], &mut out, bias_data, *relu, par)?;
                out
            }
            Op::Softmax => {
                let x = value(node.inputs[0])?;
                let mut out = self.alloc(id)?;
                softmax::softmax(x, &mut out, par)?;
                out
            }
            Op::LayoutTransform { to } => {
                crate::faults::fire(crate::faults::LAYOUT_TRANSFORM)?;
                let x = value(node.inputs[0])?;
                to_layout(x, *to)?
            }
        };
        Ok(out)
    }
}

/// Wraps an execution error with the failing node's identity. User-facing
/// input mismatches stay bare — the node context of an `Input` op adds
/// nothing — as do errors already tagged with this node.
fn at_node(node: usize, op: &'static str, e: NeoError) -> NeoError {
    match e {
        NeoError::BadInput(_) => e,
        NeoError::AtNode { node: n, .. } | NeoError::Panicked { node: n, .. } if n == node => e,
        e => NeoError::AtNode { node, op, source: Box::new(e) },
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl std::fmt::Debug for Module {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Module")
            .field("nodes", &self.graph.len())
            .field("transforms", &self.transform_count())
            .field("threads", &self.pool.num_threads())
            .field("arena_bytes", &self.plan.report.planned_peak_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions, CpuTarget, OptLevel};
    use neocpu_graph::GraphBuilder;

    #[test]
    fn rejects_wrong_inputs() {
        let mut b = GraphBuilder::new(1);
        let x = b.input([1, 4, 8, 8]);
        let c = b.conv2d(x, 4, 3, 1, 1);
        let g = b.finish(vec![c]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O0)).unwrap();
        // Missing input.
        assert!(m.run(&[]).is_err());
        // Wrong shape.
        let bad = Tensor::zeros([1, 4, 9, 9], Layout::Nchw).unwrap();
        assert!(m.run(&[bad]).is_err());
        // Wrong layout.
        let bad = Tensor::zeros([1, 4, 8, 8], Layout::NchwC(4)).unwrap();
        assert!(m.run(&[bad]).is_err());
    }

    #[test]
    fn rejects_surplus_inputs() {
        let mut b = GraphBuilder::new(1);
        let x = b.input([1, 4, 8, 8]);
        let c = b.conv2d(x, 4, 3, 1, 1);
        let g = b.finish(vec![c]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O0)).unwrap();
        let input = Tensor::random([1, 4, 8, 8], Layout::Nchw, 1, 1.0).unwrap();
        let extra = Tensor::random([1, 4, 8, 8], Layout::Nchw, 2, 1.0).unwrap();
        let err = m.run(&[input.clone(), extra]).unwrap_err();
        assert!(
            matches!(&err, NeoError::BadInput(m) if m.contains("1 input tensor(s) but 2")),
            "unexpected error: {err}"
        );
        // The exact number of inputs still works.
        m.run(&[input]).unwrap();
    }

    #[test]
    fn residual_network_executes_correctly_at_all_levels() {
        let mut b = GraphBuilder::new(2);
        let x = b.input([1, 8, 8, 8]);
        let c0 = b.conv2d(x, 8, 1, 1, 0);
        let c1 = b.conv_bn_relu(c0, 8, 3, 1, 1);
        let c2 = b.conv2d_opts(c1, 8, 3, 1, 1, false);
        let bn = b.batch_norm(c2);
        let a = b.add(bn, c0);
        let r = b.relu(a);
        let g = b.finish(vec![r]);
        let input = Tensor::random([1, 8, 8, 8], Layout::Nchw, 7, 1.0).unwrap();
        let target = CpuTarget::host();
        let base = compile(&g, &target, &CompileOptions::level(OptLevel::O0))
            .unwrap()
            .run(std::slice::from_ref(&input))
            .unwrap();
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            let out = compile(&g, &target, &CompileOptions::level(level))
                .unwrap()
                .run(std::slice::from_ref(&input))
                .unwrap();
            assert!(
                base[0].approx_eq(&out[0], 1e-4),
                "{level:?} diverged: {}",
                base[0].max_abs_diff(&out[0])
            );
        }
    }

    #[test]
    fn multi_output_graph() {
        let mut b = GraphBuilder::new(3);
        let x = b.input([1, 4, 8, 8]);
        let c1 = b.conv2d(x, 8, 3, 1, 1);
        let c2 = b.conv2d(x, 8, 3, 2, 1);
        let g = b.finish(vec![c1, c2]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O2)).unwrap();
        let input = Tensor::random([1, 4, 8, 8], Layout::Nchw, 9, 1.0).unwrap();
        let out = m.run(&[input]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].shape().dims(), &[1, 8, 8, 8]);
        assert_eq!(out[1].shape().dims(), &[1, 8, 4, 4]);
        // Outputs come back in framework-default layout.
        assert_eq!(out[0].layout(), Layout::Nchw);
    }

    #[test]
    fn profiled_run_matches_plain_run_and_accounts_ops() {
        let mut b = GraphBuilder::new(8);
        let x = b.input([1, 8, 8, 8]);
        let c = b.conv_bn_relu(x, 16, 3, 1, 1);
        let p = b.max_pool(c, 2, 2, 0);
        let g = b.finish(vec![p]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O2)).unwrap();
        let input = Tensor::random([1, 8, 8, 8], Layout::Nchw, 21, 1.0).unwrap();
        let plain = m.run(std::slice::from_ref(&input)).unwrap();
        let (profiled, profile) = m.run_profiled(std::slice::from_ref(&input)).unwrap();
        assert_eq!(plain[0].data(), profiled[0].data());
        let names: Vec<&str> = profile.iter().map(|p| p.op).collect();
        assert!(names.contains(&"conv2d"));
        assert!(names.contains(&"max_pool"));
        assert!(names.contains(&"layout_transform"));
        let conv = profile.iter().find(|p| p.op == "conv2d").unwrap();
        assert_eq!(conv.count, 1);
        assert!(conv.total_ms >= 0.0);
        // Sorted by descending total time.
        for w in profile.windows(2) {
            assert!(w[0].total_ms >= w[1].total_ms);
        }
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let mut b = GraphBuilder::new(4);
        let x = b.input([1, 4, 8, 8]);
        let c = b.conv_bn_relu(x, 8, 3, 1, 1);
        let g = b.finish(vec![c]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O2)).unwrap();
        let input = Tensor::random([1, 4, 8, 8], Layout::Nchw, 11, 1.0).unwrap();
        let a = m.run(std::slice::from_ref(&input)).unwrap();
        let b2 = m.run(std::slice::from_ref(&input)).unwrap();
        assert_eq!(a[0].data(), b2[0].data());
    }

    #[test]
    fn explicit_context_runs_match_pooled_runs() {
        let mut b = GraphBuilder::new(6);
        let x = b.input([1, 8, 8, 8]);
        let c = b.conv_bn_relu(x, 8, 3, 1, 1);
        let g = b.finish(vec![c]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O2)).unwrap();
        let input = Tensor::random([1, 8, 8, 8], Layout::Nchw, 13, 1.0).unwrap();
        let pooled = m.run(std::slice::from_ref(&input)).unwrap();
        let mut ctx = m.make_context();
        // Warm the context, then run again: results must be identical (the
        // arena holds stale data between runs; every output is overwritten).
        m.run_with(&mut ctx, std::slice::from_ref(&input)).unwrap();
        m.run_with(&mut ctx, std::slice::from_ref(&input)).unwrap();
        let out = ctx.output(0).unwrap();
        assert!(out.is_view());
        assert_eq!(out.data(), pooled[0].data());
        // Cloning an output detaches it from the arena.
        let snap = out.clone();
        assert!(!snap.is_view());
    }

    #[test]
    fn context_from_another_module_is_rejected() {
        let mut b = GraphBuilder::new(6);
        let x = b.input([1, 4, 8, 8]);
        let c = b.conv2d(x, 4, 3, 1, 1);
        let g = b.finish(vec![c]);
        let m1 = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O2)).unwrap();
        let m2 = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O2)).unwrap();
        let mut ctx = m1.make_context();
        let input = Tensor::random([1, 4, 8, 8], Layout::Nchw, 17, 1.0).unwrap();
        let err = m2.run_with(&mut ctx, std::slice::from_ref(&input)).unwrap_err();
        assert!(matches!(err, NeoError::BadInput(_)), "unexpected error: {err}");
        m1.run_with(&mut ctx, &[input]).unwrap();
    }

    #[test]
    fn arena_run_is_bit_identical_to_reference_run() {
        let mut b = GraphBuilder::new(9);
        let x = b.input([1, 8, 8, 8]);
        let c0 = b.conv2d(x, 8, 1, 1, 0);
        let c1 = b.conv_bn_relu(c0, 8, 3, 1, 1);
        let a = b.add(c1, c0);
        let r = b.relu(a);
        let g = b.finish(vec![r]);
        let input = Tensor::random([1, 8, 8, 8], Layout::Nchw, 19, 1.0).unwrap();
        for level in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
            let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(level)).unwrap();
            let planned = m.run(std::slice::from_ref(&input)).unwrap();
            let reference = m.run_reference(std::slice::from_ref(&input)).unwrap();
            assert_eq!(planned[0].data(), reference[0].data(), "{level:?} diverged");
        }
    }

    #[test]
    fn memory_report_shows_reuse_below_naive() {
        let mut b = GraphBuilder::new(12);
        let x = b.input([1, 8, 16, 16]);
        let c1 = b.conv_bn_relu(x, 16, 3, 1, 1);
        let c2 = b.conv_bn_relu(c1, 16, 3, 1, 1);
        let c3 = b.conv_bn_relu(c2, 16, 3, 1, 1);
        let g = b.finish(vec![c3]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O2)).unwrap();
        let r = m.memory_report();
        assert!(r.planned_peak_bytes > 0);
        assert!(
            r.planned_peak_bytes < r.naive_bytes,
            "no reuse: peak {} vs naive {}",
            r.planned_peak_bytes,
            r.naive_bytes
        );
        assert!(r.scratch_bytes > 0, "padded convs must reserve scratch");
        let ctx = m.make_context();
        assert_eq!(ctx.arena_bytes(), r.planned_peak_bytes);
    }

    #[test]
    fn kernel_errors_carry_node_context() {
        let err = at_node(3, "conv2d", NeoError::Internal("x".into()));
        assert!(matches!(&err, NeoError::AtNode { node: 3, op: "conv2d", .. }));
        assert!(matches!(err.root_cause(), NeoError::Internal(_)));
        // BadInput stays bare; already-tagged errors are not double-wrapped.
        let bare = at_node(1, "input", NeoError::BadInput("y".into()));
        assert!(matches!(bare, NeoError::BadInput(_)));
        let tagged = at_node(2, "relu", NeoError::Panicked {
            node: 2,
            op: "relu",
            message: "z".into(),
        });
        assert!(matches!(tagged, NeoError::Panicked { .. }));
    }
}
