//! The module executor: a topological interpreter over the compiled graph.
//!
//! Buffers are liveness-managed: a node's output tensor is dropped as soon
//! as its last consumer has executed (in-place reuse for unary ops when the
//! producer dies there), so peak memory tracks the widest live set rather
//! than the whole network — the runtime-side half of memory planning.
//!
//! Every node executes inside a **panic boundary**: an unwind out of kernel
//! or thread-pool code is caught and converted into
//! [`NeoError::Panicked`] with the node's identity, leaving the module and
//! its pool reusable for the next request. Kernel and tensor errors are
//! likewise enriched with node context ([`NeoError::AtNode`]) on their way
//! out.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use neocpu_graph::{Graph, Op};
use neocpu_kernels::conv::{conv2d_nchw_direct, conv2d_nchwc, Epilogue};
use neocpu_kernels::elementwise::{
    add, batchnorm_fold, concat_channels, relu_inplace, scale_shift,
};
use neocpu_kernels::pool2d::{global_avg_pool, pool2d};
use neocpu_kernels::{dense, softmax};
use neocpu_tensor::{transform::to_layout, Layout, Shape, Tensor};
use neocpu_threadpool::Parallelism;

use crate::{NeoError, Result};

/// Aggregated wall time of one operator kind during a profiled inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpProfile {
    /// Operator name (e.g. `"conv2d"`, `"layout_transform"`).
    pub op: &'static str,
    /// Number of nodes of this kind executed.
    pub count: usize,
    /// Total wall time across those nodes, milliseconds.
    pub total_ms: f64,
}

/// A compiled, executable model.
pub struct Module {
    graph: Graph,
    shapes: Vec<Shape>,
    layouts: Vec<Layout>,
    pool: Arc<dyn Parallelism>,
    max_lanes: usize,
    /// For each node, the index of its last consumer (or `usize::MAX` for
    /// graph outputs, pinning them).
    last_use: Vec<usize>,
}

impl Module {
    pub(crate) fn new(
        graph: Graph,
        shapes: Vec<Shape>,
        layouts: Vec<Layout>,
        pool: Arc<dyn Parallelism>,
        max_lanes: usize,
    ) -> Self {
        let mut last_use = vec![0usize; graph.len()];
        for (id, node) in graph.nodes.iter().enumerate() {
            for &i in &node.inputs {
                last_use[i] = last_use[i].max(id);
            }
        }
        for &o in &graph.outputs {
            last_use[o] = usize::MAX;
        }
        Self { graph, shapes, layouts, pool, max_lanes, last_use }
    }

    /// The optimized graph this module executes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Replaces the executor's thread pool (benchmark instrumentation).
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<dyn Parallelism>) -> Self {
        self.pool = pool;
        self
    }

    /// Number of `LayoutTransform` nodes on the inference path (the §3.2
    /// metric the ablation reports).
    pub fn transform_count(&self) -> usize {
        self.graph.transform_count()
    }

    /// Executors participating in parallel regions.
    pub fn threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// Runs one inference and reports per-operator wall time, aggregated by
    /// operator name — the profile that shows where transforms and CONVs
    /// spend the inference budget.
    ///
    /// # Errors
    ///
    /// Returns an error on input mismatch or kernel failure.
    pub fn run_profiled(&self, inputs: &[Tensor]) -> Result<(Vec<Tensor>, Vec<OpProfile>)> {
        let mut per_op: std::collections::HashMap<&'static str, OpProfile> =
            std::collections::HashMap::new();
        let mut probe = |name: &'static str, secs: f64| {
            let e = per_op.entry(name).or_insert(OpProfile { op: name, count: 0, total_ms: 0.0 });
            e.count += 1;
            e.total_ms += secs * 1e3;
        };
        let outputs = self.run_inner(inputs, Some(&mut probe))?;
        let mut profiles: Vec<OpProfile> = per_op.into_values().collect();
        profiles.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));
        Ok((outputs, profiles))
    }

    /// Runs one inference.
    ///
    /// `inputs` are matched to the graph's `Input` nodes in id order and
    /// must be `NCHW` (rank 4) or `NC` (rank 2) tensors of the declared
    /// shapes; surplus tensors are rejected.
    ///
    /// # Errors
    ///
    /// Returns an error on input mismatch or kernel failure. A panic in
    /// kernel or thread-pool code is caught at the per-node boundary and
    /// returned as [`NeoError::Panicked`]; the module stays usable.
    pub fn run(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        self.run_inner(inputs, None)
    }

    fn run_inner(
        &self,
        inputs: &[Tensor],
        mut probe: Option<&mut dyn FnMut(&'static str, f64)>,
    ) -> Result<Vec<Tensor>> {
        let g = &self.graph;
        let mut values: Vec<Option<Tensor>> = vec![None; g.len()];
        let mut next_input = 0usize;
        #[cfg(feature = "fault-injection")]
        let pool_wrap = crate::faults::WorkerFaultPar(&*self.pool);
        #[cfg(feature = "fault-injection")]
        let par: &dyn Parallelism = &pool_wrap;
        #[cfg(not(feature = "fault-injection"))]
        let par: &dyn Parallelism = &*self.pool;

        for id in 0..g.len() {
            let node = &g.nodes[id];
            let t0 = probe.is_some().then(std::time::Instant::now);
            // Panic boundary: an unwind from kernel code (including one
            // re-raised by the pool's own containment) becomes a typed
            // error instead of tearing down the serving thread.
            let unwound = panic::catch_unwind(AssertUnwindSafe(|| {
                self.exec_node(id, node, &mut values, inputs, &mut next_input, par)
            }));
            let out = match unwound {
                Ok(Ok(t)) => t,
                Ok(Err(e)) => return Err(at_node(id, node.op.name(), e)),
                Err(payload) => {
                    return Err(NeoError::Panicked {
                        node: id,
                        op: node.op.name(),
                        message: panic_message(payload.as_ref()),
                    })
                }
            };
            if let (Some(p), Some(t0)) = (probe.as_deref_mut(), t0) {
                p(node.op.name(), t0.elapsed().as_secs_f64());
            }
            values[id] = Some(out);
            // Liveness: drop every input whose last consumer was this node.
            for &i in &node.inputs {
                if self.last_use[i] == id {
                    values[i] = None;
                }
            }
        }

        if next_input != inputs.len() {
            return Err(NeoError::BadInput(format!(
                "graph consumes {next_input} input tensor(s) but {} were provided",
                inputs.len()
            )));
        }

        g.outputs
            .iter()
            .map(|&o| {
                values[o]
                    .clone()
                    .ok_or_else(|| NeoError::Internal(format!("output {o} not computed")))
            })
            .collect()
    }

    /// Allocates the output buffer of node `id`.
    fn alloc(&self, id: usize) -> Result<Tensor> {
        crate::faults::fire(crate::faults::TENSOR_ALLOC)?;
        Ok(Tensor::zeros(self.shapes[id].clone(), self.layouts[id])?)
    }

    /// Executes one node and returns its output tensor. Called inside the
    /// per-node panic boundary of [`Module::run_inner`].
    fn exec_node(
        &self,
        id: usize,
        node: &neocpu_graph::Node,
        values: &mut [Option<Tensor>],
        inputs: &[Tensor],
        next_input: &mut usize,
        par: &dyn Parallelism,
    ) -> Result<Tensor> {
        let g = &self.graph;
        if !matches!(node.op, Op::Input { .. } | Op::LayoutTransform { .. }) {
            crate::faults::fire(crate::faults::KERNEL_ENTRY)?;
        }
        let out = match &node.op {
            Op::Input { shape } => {
                let t = inputs.get(*next_input).ok_or_else(|| {
                    NeoError::BadInput(format!("missing input #{next_input}"))
                })?;
                *next_input += 1;
                if t.shape().dims() != &shape[..] {
                    return Err(NeoError::BadInput(format!(
                        "input #{} has shape {}, expected {:?}",
                        *next_input - 1,
                        t.shape(),
                        shape
                    )));
                }
                if t.layout() != self.layouts[id] {
                    return Err(NeoError::BadInput(format!(
                        "input #{} must be {}, got {}",
                        *next_input - 1,
                        self.layouts[id],
                        t.layout()
                    )));
                }
                t.clone()
            }
            Op::Conv2d { params, weight, bias, schedule, relu, residual } => {
                let x = self.value(values, node.inputs[0])?;
                let res = if *residual {
                    Some(self.value(values, node.inputs[1])?)
                } else {
                    None
                };
                let bias_data = bias.map(|b| g.params[b].data());
                let epi = Epilogue { bias: bias_data, relu: *relu, residual: res };
                let mut out = self.alloc(id)?;
                match schedule {
                    Some(s) => {
                        conv2d_nchwc(
                            x,
                            &g.params[*weight],
                            &mut out,
                            params,
                            s,
                            &epi,
                            par,
                            self.max_lanes,
                        )?;
                    }
                    None => {
                        conv2d_nchw_direct(x, &g.params[*weight], &mut out, params, &epi, par)?;
                    }
                }
                out
            }
            Op::ScaleShift { scale, shift } => {
                let x = self.value(values, node.inputs[0])?;
                let mut out = self.alloc(id)?;
                scale_shift(x, &mut out, g.params[*scale].data(), g.params[*shift].data(), par)?;
                out
            }
            Op::BatchNorm { gamma, beta, mean, var, eps } => {
                // Normally folded away; kept total for un-simplified graphs.
                let (scale, shift) = batchnorm_fold(
                    g.params[*gamma].data(),
                    g.params[*beta].data(),
                    g.params[*mean].data(),
                    g.params[*var].data(),
                    *eps,
                );
                let x = self.value(values, node.inputs[0])?;
                let mut out = self.alloc(id)?;
                scale_shift(x, &mut out, &scale, &shift, par)?;
                out
            }
            Op::Relu => {
                let mut t = self.take_or_clone(values, node.inputs[0], id)?;
                relu_inplace(&mut t, par);
                t
            }
            Op::Dropout => self.take_or_clone(values, node.inputs[0], id)?,
            Op::Pool { params, kind } => {
                let x = self.value(values, node.inputs[0])?;
                let mut out = self.alloc(id)?;
                pool2d(x, &mut out, params, *kind, par)?;
                out
            }
            Op::GlobalAvgPool => {
                let x = self.value(values, node.inputs[0])?;
                let mut out = self.alloc(id)?;
                global_avg_pool(x, &mut out, par)?;
                out
            }
            Op::Add => {
                let a = self.value(values, node.inputs[0])?;
                let b = self.value(values, node.inputs[1])?;
                let mut out = self.alloc(id)?;
                add(a, b, &mut out, par)?;
                out
            }
            Op::Concat => {
                let ins: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|&i| self.value(values, i))
                    .collect::<Result<_>>()?;
                let mut out = self.alloc(id)?;
                concat_channels(&ins, &mut out, par)?;
                out
            }
            Op::Flatten => {
                let x = self.value(values, node.inputs[0])?;
                x.reshaped(self.shapes[id].clone())?
            }
            Op::Dense { weight, bias, relu } => {
                let x = self.value(values, node.inputs[0])?;
                let bias_data = bias.map(|b| g.params[b].data());
                let mut out = self.alloc(id)?;
                dense::dense(x, &g.params[*weight], &mut out, bias_data, *relu, par)?;
                out
            }
            Op::Softmax => {
                let x = self.value(values, node.inputs[0])?;
                let mut out = self.alloc(id)?;
                softmax::softmax(x, &mut out, par)?;
                out
            }
            Op::LayoutTransform { to } => {
                crate::faults::fire(crate::faults::LAYOUT_TRANSFORM)?;
                let x = self.value(values, node.inputs[0])?;
                to_layout(x, *to)?
            }
        };
        Ok(out)
    }

    fn value<'v>(&self, values: &'v [Option<Tensor>], id: usize) -> Result<&'v Tensor> {
        values[id]
            .as_ref()
            .ok_or_else(|| NeoError::Internal(format!("value {id} freed too early")))
    }

    /// Takes ownership of an input value when this node is its last
    /// consumer (enabling in-place unary ops), cloning otherwise.
    fn take_or_clone(
        &self,
        values: &mut [Option<Tensor>],
        id: usize,
        consumer: usize,
    ) -> Result<Tensor> {
        if self.last_use[id] == consumer {
            values[id]
                .take()
                .ok_or_else(|| NeoError::Internal(format!("value {id} freed too early")))
        } else {
            values[id]
                .clone()
                .ok_or_else(|| NeoError::Internal(format!("value {id} freed too early")))
        }
    }
}

/// Wraps an execution error with the failing node's identity. User-facing
/// input mismatches stay bare — the node context of an `Input` op adds
/// nothing — as do errors already tagged with this node.
fn at_node(node: usize, op: &'static str, e: NeoError) -> NeoError {
    match e {
        NeoError::BadInput(_) => e,
        NeoError::AtNode { node: n, .. } | NeoError::Panicked { node: n, .. } if n == node => e,
        e => NeoError::AtNode { node, op, source: Box::new(e) },
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl std::fmt::Debug for Module {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Module")
            .field("nodes", &self.graph.len())
            .field("transforms", &self.transform_count())
            .field("threads", &self.pool.num_threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions, CpuTarget, OptLevel};
    use neocpu_graph::GraphBuilder;

    #[test]
    fn rejects_wrong_inputs() {
        let mut b = GraphBuilder::new(1);
        let x = b.input([1, 4, 8, 8]);
        let c = b.conv2d(x, 4, 3, 1, 1);
        let g = b.finish(vec![c]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O0)).unwrap();
        // Missing input.
        assert!(m.run(&[]).is_err());
        // Wrong shape.
        let bad = Tensor::zeros([1, 4, 9, 9], Layout::Nchw).unwrap();
        assert!(m.run(&[bad]).is_err());
        // Wrong layout.
        let bad = Tensor::zeros([1, 4, 8, 8], Layout::NchwC(4)).unwrap();
        assert!(m.run(&[bad]).is_err());
    }

    #[test]
    fn rejects_surplus_inputs() {
        let mut b = GraphBuilder::new(1);
        let x = b.input([1, 4, 8, 8]);
        let c = b.conv2d(x, 4, 3, 1, 1);
        let g = b.finish(vec![c]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O0)).unwrap();
        let input = Tensor::random([1, 4, 8, 8], Layout::Nchw, 1, 1.0).unwrap();
        let extra = Tensor::random([1, 4, 8, 8], Layout::Nchw, 2, 1.0).unwrap();
        let err = m.run(&[input.clone(), extra]).unwrap_err();
        assert!(
            matches!(&err, NeoError::BadInput(m) if m.contains("1 input tensor(s) but 2")),
            "unexpected error: {err}"
        );
        // The exact number of inputs still works.
        m.run(&[input]).unwrap();
    }

    #[test]
    fn residual_network_executes_correctly_at_all_levels() {
        let mut b = GraphBuilder::new(2);
        let x = b.input([1, 8, 8, 8]);
        let c0 = b.conv2d(x, 8, 1, 1, 0);
        let c1 = b.conv_bn_relu(c0, 8, 3, 1, 1);
        let c2 = b.conv2d_opts(c1, 8, 3, 1, 1, false);
        let bn = b.batch_norm(c2);
        let a = b.add(bn, c0);
        let r = b.relu(a);
        let g = b.finish(vec![r]);
        let input = Tensor::random([1, 8, 8, 8], Layout::Nchw, 7, 1.0).unwrap();
        let target = CpuTarget::host();
        let base = compile(&g, &target, &CompileOptions::level(OptLevel::O0))
            .unwrap()
            .run(std::slice::from_ref(&input))
            .unwrap();
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            let out = compile(&g, &target, &CompileOptions::level(level))
                .unwrap()
                .run(std::slice::from_ref(&input))
                .unwrap();
            assert!(
                base[0].approx_eq(&out[0], 1e-4),
                "{level:?} diverged: {}",
                base[0].max_abs_diff(&out[0])
            );
        }
    }

    #[test]
    fn multi_output_graph() {
        let mut b = GraphBuilder::new(3);
        let x = b.input([1, 4, 8, 8]);
        let c1 = b.conv2d(x, 8, 3, 1, 1);
        let c2 = b.conv2d(x, 8, 3, 2, 1);
        let g = b.finish(vec![c1, c2]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O2)).unwrap();
        let input = Tensor::random([1, 4, 8, 8], Layout::Nchw, 9, 1.0).unwrap();
        let out = m.run(&[input]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].shape().dims(), &[1, 8, 8, 8]);
        assert_eq!(out[1].shape().dims(), &[1, 8, 4, 4]);
        // Outputs come back in framework-default layout.
        assert_eq!(out[0].layout(), Layout::Nchw);
    }

    #[test]
    fn profiled_run_matches_plain_run_and_accounts_ops() {
        let mut b = GraphBuilder::new(8);
        let x = b.input([1, 8, 8, 8]);
        let c = b.conv_bn_relu(x, 16, 3, 1, 1);
        let p = b.max_pool(c, 2, 2, 0);
        let g = b.finish(vec![p]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O2)).unwrap();
        let input = Tensor::random([1, 8, 8, 8], Layout::Nchw, 21, 1.0).unwrap();
        let plain = m.run(std::slice::from_ref(&input)).unwrap();
        let (profiled, profile) = m.run_profiled(std::slice::from_ref(&input)).unwrap();
        assert_eq!(plain[0].data(), profiled[0].data());
        let names: Vec<&str> = profile.iter().map(|p| p.op).collect();
        assert!(names.contains(&"conv2d"));
        assert!(names.contains(&"max_pool"));
        assert!(names.contains(&"layout_transform"));
        let conv = profile.iter().find(|p| p.op == "conv2d").unwrap();
        assert_eq!(conv.count, 1);
        assert!(conv.total_ms >= 0.0);
        // Sorted by descending total time.
        for w in profile.windows(2) {
            assert!(w[0].total_ms >= w[1].total_ms);
        }
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let mut b = GraphBuilder::new(4);
        let x = b.input([1, 4, 8, 8]);
        let c = b.conv_bn_relu(x, 8, 3, 1, 1);
        let g = b.finish(vec![c]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O2)).unwrap();
        let input = Tensor::random([1, 4, 8, 8], Layout::Nchw, 11, 1.0).unwrap();
        let a = m.run(std::slice::from_ref(&input)).unwrap();
        let b2 = m.run(std::slice::from_ref(&input)).unwrap();
        assert_eq!(a[0].data(), b2[0].data());
    }

    #[test]
    fn kernel_errors_carry_node_context() {
        let err = at_node(3, "conv2d", NeoError::Internal("x".into()));
        assert!(matches!(&err, NeoError::AtNode { node: 3, op: "conv2d", .. }));
        assert!(matches!(err.root_cause(), NeoError::Internal(_)));
        // BadInput stays bare; already-tagged errors are not double-wrapped.
        let bare = at_node(1, "input", NeoError::BadInput("y".into()));
        assert!(matches!(bare, NeoError::BadInput(_)));
        let tagged = at_node(2, "relu", NeoError::Panicked {
            node: 2,
            op: "relu",
            message: "z".into(),
        });
        assert!(matches!(tagged, NeoError::Panicked { .. }));
    }
}
