//! The module executor: a topological interpreter over the compiled graph.
//!
//! Buffers are liveness-managed: a node's output tensor is dropped as soon
//! as its last consumer has executed (in-place reuse for unary ops when the
//! producer dies there), so peak memory tracks the widest live set rather
//! than the whole network — the runtime-side half of memory planning.

use std::sync::Arc;

use neocpu_graph::{Graph, Op};
use neocpu_kernels::conv::{conv2d_nchw_direct, conv2d_nchwc, Epilogue};
use neocpu_kernels::elementwise::{
    add, batchnorm_fold, concat_channels, relu_inplace, scale_shift,
};
use neocpu_kernels::pool2d::{global_avg_pool, pool2d};
use neocpu_kernels::{dense, softmax};
use neocpu_tensor::{transform::to_layout, Layout, Shape, Tensor};
use neocpu_threadpool::Parallelism;

use crate::{NeoError, Result};

/// Aggregated wall time of one operator kind during a profiled inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpProfile {
    /// Operator name (e.g. `"conv2d"`, `"layout_transform"`).
    pub op: &'static str,
    /// Number of nodes of this kind executed.
    pub count: usize,
    /// Total wall time across those nodes, milliseconds.
    pub total_ms: f64,
}

/// A compiled, executable model.
pub struct Module {
    graph: Graph,
    shapes: Vec<Shape>,
    layouts: Vec<Layout>,
    pool: Arc<dyn Parallelism>,
    max_lanes: usize,
    /// For each node, the index of its last consumer (or `usize::MAX` for
    /// graph outputs, pinning them).
    last_use: Vec<usize>,
}

impl Module {
    pub(crate) fn new(
        graph: Graph,
        shapes: Vec<Shape>,
        layouts: Vec<Layout>,
        pool: Arc<dyn Parallelism>,
        max_lanes: usize,
    ) -> Self {
        let mut last_use = vec![0usize; graph.len()];
        for (id, node) in graph.nodes.iter().enumerate() {
            for &i in &node.inputs {
                last_use[i] = last_use[i].max(id);
            }
        }
        for &o in &graph.outputs {
            last_use[o] = usize::MAX;
        }
        Self { graph, shapes, layouts, pool, max_lanes, last_use }
    }

    /// The optimized graph this module executes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Replaces the executor's thread pool (benchmark instrumentation).
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<dyn Parallelism>) -> Self {
        self.pool = pool;
        self
    }

    /// Number of `LayoutTransform` nodes on the inference path (the §3.2
    /// metric the ablation reports).
    pub fn transform_count(&self) -> usize {
        self.graph.transform_count()
    }

    /// Executors participating in parallel regions.
    pub fn threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// Runs one inference and reports per-operator wall time, aggregated by
    /// operator name — the profile that shows where transforms and CONVs
    /// spend the inference budget.
    ///
    /// # Errors
    ///
    /// Returns an error on input mismatch or kernel failure.
    pub fn run_profiled(&self, inputs: &[Tensor]) -> Result<(Vec<Tensor>, Vec<OpProfile>)> {
        let mut per_op: std::collections::HashMap<&'static str, OpProfile> =
            std::collections::HashMap::new();
        let mut probe = |name: &'static str, secs: f64| {
            let e = per_op.entry(name).or_insert(OpProfile { op: name, count: 0, total_ms: 0.0 });
            e.count += 1;
            e.total_ms += secs * 1e3;
        };
        let outputs = self.run_inner(inputs, Some(&mut probe))?;
        let mut profiles: Vec<OpProfile> = per_op.into_values().collect();
        profiles.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));
        Ok((outputs, profiles))
    }

    /// Runs one inference.
    ///
    /// `inputs` are matched to the graph's `Input` nodes in id order and
    /// must be `NCHW` (rank 4) or `NC` (rank 2) tensors of the declared
    /// shapes.
    ///
    /// # Errors
    ///
    /// Returns an error on input mismatch or kernel failure.
    pub fn run(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        self.run_inner(inputs, None)
    }

    fn run_inner(
        &self,
        inputs: &[Tensor],
        mut probe: Option<&mut dyn FnMut(&'static str, f64)>,
    ) -> Result<Vec<Tensor>> {
        let g = &self.graph;
        let mut values: Vec<Option<Tensor>> = vec![None; g.len()];
        let mut next_input = 0usize;
        let par: &dyn Parallelism = &*self.pool;

        for id in 0..g.len() {
            let node = &g.nodes[id];
            let t0 = probe.is_some().then(std::time::Instant::now);
            let out = match &node.op {
                Op::Input { shape } => {
                    let t = inputs.get(next_input).ok_or_else(|| {
                        NeoError::BadInput(format!("missing input #{next_input}"))
                    })?;
                    next_input += 1;
                    if t.shape().dims() != &shape[..] {
                        return Err(NeoError::BadInput(format!(
                            "input #{} has shape {}, expected {:?}",
                            next_input - 1,
                            t.shape(),
                            shape
                        )));
                    }
                    if t.layout() != self.layouts[id] {
                        return Err(NeoError::BadInput(format!(
                            "input #{} must be {}, got {}",
                            next_input - 1,
                            self.layouts[id],
                            t.layout()
                        )));
                    }
                    t.clone()
                }
                Op::Conv2d { params, weight, bias, schedule, relu, residual } => {
                    let x = self.value(&values, node.inputs[0])?;
                    let res = if *residual {
                        Some(self.value(&values, node.inputs[1])?)
                    } else {
                        None
                    };
                    let bias_data = bias.map(|b| g.params[b].data());
                    let epi = Epilogue { bias: bias_data, relu: *relu, residual: res };
                    let mut out =
                        Tensor::zeros(self.shapes[id].clone(), self.layouts[id])?;
                    match schedule {
                        Some(s) => {
                            conv2d_nchwc(
                                x,
                                &g.params[*weight],
                                &mut out,
                                params,
                                s,
                                &epi,
                                par,
                                self.max_lanes,
                            )?;
                        }
                        None => {
                            conv2d_nchw_direct(x, &g.params[*weight], &mut out, params, &epi, par)?;
                        }
                    }
                    out
                }
                Op::ScaleShift { scale, shift } => {
                    let x = self.value(&values, node.inputs[0])?;
                    let mut out = Tensor::zeros(self.shapes[id].clone(), self.layouts[id])?;
                    scale_shift(x, &mut out, g.params[*scale].data(), g.params[*shift].data(), par)?;
                    out
                }
                Op::BatchNorm { gamma, beta, mean, var, eps } => {
                    // Normally folded away; kept total for un-simplified graphs.
                    let (scale, shift) = batchnorm_fold(
                        g.params[*gamma].data(),
                        g.params[*beta].data(),
                        g.params[*mean].data(),
                        g.params[*var].data(),
                        *eps,
                    );
                    let x = self.value(&values, node.inputs[0])?;
                    let mut out = Tensor::zeros(self.shapes[id].clone(), self.layouts[id])?;
                    scale_shift(x, &mut out, &scale, &shift, par)?;
                    out
                }
                Op::Relu => {
                    let mut t = self.take_or_clone(&mut values, node.inputs[0], id)?;
                    relu_inplace(&mut t, par);
                    t
                }
                Op::Dropout => self.take_or_clone(&mut values, node.inputs[0], id)?,
                Op::Pool { params, kind } => {
                    let x = self.value(&values, node.inputs[0])?;
                    let mut out = Tensor::zeros(self.shapes[id].clone(), self.layouts[id])?;
                    pool2d(x, &mut out, params, *kind, par)?;
                    out
                }
                Op::GlobalAvgPool => {
                    let x = self.value(&values, node.inputs[0])?;
                    let mut out = Tensor::zeros(self.shapes[id].clone(), self.layouts[id])?;
                    global_avg_pool(x, &mut out, par)?;
                    out
                }
                Op::Add => {
                    let a = self.value(&values, node.inputs[0])?;
                    let b = self.value(&values, node.inputs[1])?;
                    let mut out = Tensor::zeros(self.shapes[id].clone(), self.layouts[id])?;
                    add(a, b, &mut out, par)?;
                    out
                }
                Op::Concat => {
                    let ins: Vec<&Tensor> = node
                        .inputs
                        .iter()
                        .map(|&i| self.value(&values, i))
                        .collect::<Result<_>>()?;
                    let mut out = Tensor::zeros(self.shapes[id].clone(), self.layouts[id])?;
                    concat_channels(&ins, &mut out, par)?;
                    out
                }
                Op::Flatten => {
                    let x = self.value(&values, node.inputs[0])?;
                    x.reshaped(self.shapes[id].clone())?
                }
                Op::Dense { weight, bias, relu } => {
                    let x = self.value(&values, node.inputs[0])?;
                    let bias_data = bias.map(|b| g.params[b].data());
                    let mut out = Tensor::zeros(self.shapes[id].clone(), self.layouts[id])?;
                    dense::dense(x, &g.params[*weight], &mut out, bias_data, *relu, par)?;
                    out
                }
                Op::Softmax => {
                    let x = self.value(&values, node.inputs[0])?;
                    let mut out = Tensor::zeros(self.shapes[id].clone(), self.layouts[id])?;
                    softmax::softmax(x, &mut out, par)?;
                    out
                }
                Op::LayoutTransform { to } => {
                    let x = self.value(&values, node.inputs[0])?;
                    to_layout(x, *to)?
                }
            };
            if let (Some(p), Some(t0)) = (probe.as_deref_mut(), t0) {
                p(node.op.name(), t0.elapsed().as_secs_f64());
            }
            values[id] = Some(out);
            // Liveness: drop every input whose last consumer was this node.
            for &i in &node.inputs {
                if self.last_use[i] == id {
                    values[i] = None;
                }
            }
        }

        g.outputs
            .iter()
            .map(|&o| {
                values[o]
                    .clone()
                    .ok_or_else(|| NeoError::Internal(format!("output {o} not computed")))
            })
            .collect()
    }

    fn value<'v>(&self, values: &'v [Option<Tensor>], id: usize) -> Result<&'v Tensor> {
        values[id]
            .as_ref()
            .ok_or_else(|| NeoError::Internal(format!("value {id} freed too early")))
    }

    /// Takes ownership of an input value when this node is its last
    /// consumer (enabling in-place unary ops), cloning otherwise.
    fn take_or_clone(
        &self,
        values: &mut [Option<Tensor>],
        id: usize,
        consumer: usize,
    ) -> Result<Tensor> {
        if self.last_use[id] == consumer {
            values[id]
                .take()
                .ok_or_else(|| NeoError::Internal(format!("value {id} freed too early")))
        } else {
            values[id]
                .clone()
                .ok_or_else(|| NeoError::Internal(format!("value {id} freed too early")))
        }
    }
}

impl std::fmt::Debug for Module {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Module")
            .field("nodes", &self.graph.len())
            .field("transforms", &self.transform_count())
            .field("threads", &self.pool.num_threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions, CpuTarget, OptLevel};
    use neocpu_graph::GraphBuilder;

    #[test]
    fn rejects_wrong_inputs() {
        let mut b = GraphBuilder::new(1);
        let x = b.input([1, 4, 8, 8]);
        let c = b.conv2d(x, 4, 3, 1, 1);
        let g = b.finish(vec![c]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O0)).unwrap();
        // Missing input.
        assert!(m.run(&[]).is_err());
        // Wrong shape.
        let bad = Tensor::zeros([1, 4, 9, 9], Layout::Nchw).unwrap();
        assert!(m.run(&[bad]).is_err());
        // Wrong layout.
        let bad = Tensor::zeros([1, 4, 8, 8], Layout::NchwC(4)).unwrap();
        assert!(m.run(&[bad]).is_err());
    }

    #[test]
    fn residual_network_executes_correctly_at_all_levels() {
        let mut b = GraphBuilder::new(2);
        let x = b.input([1, 8, 8, 8]);
        let c0 = b.conv2d(x, 8, 1, 1, 0);
        let c1 = b.conv_bn_relu(c0, 8, 3, 1, 1);
        let c2 = b.conv2d_opts(c1, 8, 3, 1, 1, false);
        let bn = b.batch_norm(c2);
        let a = b.add(bn, c0);
        let r = b.relu(a);
        let g = b.finish(vec![r]);
        let input = Tensor::random([1, 8, 8, 8], Layout::Nchw, 7, 1.0).unwrap();
        let target = CpuTarget::host();
        let base = compile(&g, &target, &CompileOptions::level(OptLevel::O0))
            .unwrap()
            .run(std::slice::from_ref(&input))
            .unwrap();
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            let out = compile(&g, &target, &CompileOptions::level(level))
                .unwrap()
                .run(std::slice::from_ref(&input))
                .unwrap();
            assert!(
                base[0].approx_eq(&out[0], 1e-4),
                "{level:?} diverged: {}",
                base[0].max_abs_diff(&out[0])
            );
        }
    }

    #[test]
    fn multi_output_graph() {
        let mut b = GraphBuilder::new(3);
        let x = b.input([1, 4, 8, 8]);
        let c1 = b.conv2d(x, 8, 3, 1, 1);
        let c2 = b.conv2d(x, 8, 3, 2, 1);
        let g = b.finish(vec![c1, c2]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O2)).unwrap();
        let input = Tensor::random([1, 4, 8, 8], Layout::Nchw, 9, 1.0).unwrap();
        let out = m.run(&[input]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].shape().dims(), &[1, 8, 8, 8]);
        assert_eq!(out[1].shape().dims(), &[1, 8, 4, 4]);
        // Outputs come back in framework-default layout.
        assert_eq!(out[0].layout(), Layout::Nchw);
    }

    #[test]
    fn profiled_run_matches_plain_run_and_accounts_ops() {
        let mut b = GraphBuilder::new(8);
        let x = b.input([1, 8, 8, 8]);
        let c = b.conv_bn_relu(x, 16, 3, 1, 1);
        let p = b.max_pool(c, 2, 2, 0);
        let g = b.finish(vec![p]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O2)).unwrap();
        let input = Tensor::random([1, 8, 8, 8], Layout::Nchw, 21, 1.0).unwrap();
        let plain = m.run(std::slice::from_ref(&input)).unwrap();
        let (profiled, profile) = m.run_profiled(std::slice::from_ref(&input)).unwrap();
        assert_eq!(plain[0].data(), profiled[0].data());
        let names: Vec<&str> = profile.iter().map(|p| p.op).collect();
        assert!(names.contains(&"conv2d"));
        assert!(names.contains(&"max_pool"));
        assert!(names.contains(&"layout_transform"));
        let conv = profile.iter().find(|p| p.op == "conv2d").unwrap();
        assert_eq!(conv.count, 1);
        assert!(conv.total_ms >= 0.0);
        // Sorted by descending total time.
        for w in profile.windows(2) {
            assert!(w[0].total_ms >= w[1].total_ms);
        }
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let mut b = GraphBuilder::new(4);
        let x = b.input([1, 4, 8, 8]);
        let c = b.conv_bn_relu(x, 8, 3, 1, 1);
        let g = b.finish(vec![c]);
        let m = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O2)).unwrap();
        let input = Tensor::random([1, 4, 8, 8], Layout::Nchw, 11, 1.0).unwrap();
        let a = m.run(std::slice::from_ref(&input)).unwrap();
        let b2 = m.run(std::slice::from_ref(&input)).unwrap();
        assert_eq!(a[0].data(), b2[0].data());
    }
}
