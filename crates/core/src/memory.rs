//! The static memory planner: compile-time liveness analysis + arena layout.
//!
//! The executor used to allocate (and memset) every node's output on every
//! inference and let `Drop` reclaim dead values. This module moves that
//! entire decision to compile time, in three steps:
//!
//! 1. **Liveness** — each node's output value is live over the interval
//!    `[def, last_use]` (graph outputs are pinned to the end of the run).
//! 2. **Slot merging** — values that may share storage are unioned into one
//!    slot: `Flatten`/`Dropout` always alias their producer (read-only
//!    reinterpretation), and `Relu`/`Add` run **in place** when the planner
//!    proves the overwritten input's slot dies at exactly that node. What
//!    the old executor decided at run time with `take_or_clone`, the plan
//!    decides once, for free.
//! 3. **Best-fit interval packing** — slots (plus per-conv padded-input
//!    scratch regions) are assigned offsets into one 64-byte-aligned arena,
//!    largest first, each taking the smallest already-freed gap that fits
//!    among the regions whose live intervals overlap its own.
//!
//! The resulting [`MemoryPlan`] is what makes steady-state inference
//! allocation-free: every intermediate tensor is a view of the arena at its
//! planned offset, and the plan's disjointness invariant (verified
//! post-packing, `O(n²)`, at compile time) is exactly the soundness
//! contract of [`neocpu_tensor::Arena`]'s unsafe slice accessors.

use neocpu_graph::{Graph, Op};
use neocpu_kernels::padded_input_len;
use neocpu_tensor::{DType, Layout, Shape};

use crate::{NeoError, Result};

/// Arena alignment quantum in `f32` elements (64 bytes / 4).
///
/// Every region size is rounded up to this, which keeps every planned
/// offset 64-byte aligned by induction — the SIMD kernels' contract.
pub const ALIGN_ELEMS: usize = 16;

/// A storage request over a half-open execution interval: the region must
/// not share memory with any other request whose `[start, end]` interval
/// overlaps this one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveRange {
    /// First node index at which the region is written.
    pub start: usize,
    /// Last node index at which the region is read (`usize::MAX` pins the
    /// region to the end of the run, e.g. for graph outputs).
    pub end: usize,
    /// Region length in `f32` elements (already alignment-rounded by the
    /// planner; [`pack_live_ranges`] packs whatever it is given).
    pub len: usize,
}

impl LiveRange {
    /// Whether two requests are ever live at the same time (and therefore
    /// must not share arena bytes).
    pub fn overlaps(&self, other: &LiveRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

/// Memory-plan statistics surfaced through `CompileReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Bytes of the planned arena (peak intermediate memory, aligned).
    pub planned_peak_bytes: usize,
    /// Bytes a naive executor would allocate: the sum of every node's
    /// output size, the old per-run allocation bill.
    pub naive_bytes: usize,
    /// Storage-reuse decisions: values aliased onto their producer
    /// (`Flatten`/`Dropout`) or computed in place (`Relu`/`Add`).
    pub reused: usize,
    /// Bytes of planned conv padded-input scratch inside the arena.
    pub scratch_bytes: usize,
    /// Batch size the module was planned at (leading dim of the first
    /// graph input; 1 when the graph has no batched input). One plan is
    /// shared by every `RunContext` built from the module, so a serving
    /// context pool of `w` workers costs `w × planned_peak_bytes`.
    pub batch: usize,
}

impl MemoryReport {
    /// Planned arena bytes attributable to one image of the batch — the
    /// per-request memory cost a batched serving engine amortizes.
    pub fn per_image_peak_bytes(&self) -> usize {
        self.planned_peak_bytes / self.batch.max(1)
    }

    /// Total arena bytes for a pool of `contexts` concurrent
    /// `RunContext`s sharing this plan.
    pub fn pool_bytes(&self, contexts: usize) -> usize {
        self.planned_peak_bytes * contexts
    }
}

/// The compile-time storage assignment for one module.
#[derive(Debug, Clone)]
pub(crate) struct MemoryPlan {
    /// Arena element offset of each node's output value.
    pub offsets: Vec<usize>,
    /// Per-node padded-input scratch `(offset, len)`, for scheduled convs
    /// with nonzero padding.
    pub scratch: Vec<Option<(usize, usize)>>,
    /// For nodes whose output shares its input's storage: the position in
    /// `node.inputs` of the aliased input.
    pub inplace: Vec<Option<usize>>,
    /// Total arena length in `f32` elements.
    pub arena_len: usize,
    /// Plan statistics.
    pub report: MemoryReport,
}

/// Greedy best-fit offset packing over live ranges.
///
/// Processes ranges largest-first; each is placed at the smallest gap — among
/// the already-placed ranges whose intervals overlap it — that fits, or
/// appended past them. Returns the offsets (parallel to `ranges`) and the
/// total arena length. Offsets inherit the alignment of the input lengths:
/// if every `len` is a multiple of [`ALIGN_ELEMS`], so is every offset.
///
/// Exposed publicly so property tests can hammer the packer with random
/// DAG-shaped live ranges independently of graph construction.
pub fn pack_live_ranges(ranges: &[LiveRange]) -> (Vec<usize>, usize) {
    let mut order: Vec<usize> = (0..ranges.len()).filter(|&i| ranges[i].len > 0).collect();
    // Largest first (classic offset packing); ties broken by start then id
    // for determinism.
    order.sort_by(|&a, &b| {
        ranges[b]
            .len
            .cmp(&ranges[a].len)
            .then(ranges[a].start.cmp(&ranges[b].start))
            .then(a.cmp(&b))
    });
    let mut offsets = vec![0usize; ranges.len()];
    let mut placed: Vec<usize> = Vec::new();
    let mut total = 0usize;
    for &i in &order {
        let r = &ranges[i];
        let mut conflicts: Vec<(usize, usize)> = placed
            .iter()
            .filter(|&&j| ranges[j].overlaps(r))
            .map(|&j| (offsets[j], offsets[j] + ranges[j].len))
            .collect();
        conflicts.sort_unstable();
        // Scan the gaps between conflicting regions; take the tightest fit.
        // Candidate offsets are rounded up to the alignment quantum so the
        // guarantee holds even for requests with unaligned lengths.
        let mut best: Option<(usize, usize)> = None; // (gap_len, offset)
        let mut cursor = 0usize;
        for (s, e) in conflicts {
            let at = align_up(cursor);
            if s > at {
                let gap = s - at;
                if gap >= r.len && best.is_none_or(|(g, _)| gap < g) {
                    best = Some((gap, at));
                }
            }
            cursor = cursor.max(e);
        }
        let off = match best {
            Some((_, o)) => o,
            None => align_up(cursor),
        };
        offsets[i] = off;
        total = total.max(off + r.len);
        placed.push(i);
    }
    (offsets, total)
}

/// Rounds a length in elements up to the arena alignment quantum.
fn align_up(len: usize) -> usize {
    len.div_ceil(ALIGN_ELEMS) * ALIGN_ELEMS
}

/// Minimal union-find over node ids for slot merging.
struct Slots {
    parent: Vec<usize>,
}

impl Slots {
    fn new(n: usize) -> Self {
        Self { parent: (0..n).collect() }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        self.parent[ra] = rb;
    }
}

/// Builds the static memory plan for a compiled graph.
///
/// # Errors
///
/// Returns [`NeoError::Internal`] if the produced plan violates its own
/// disjointness invariant — a planner bug that must never reach the
/// executor's unsafe arena views.
pub(crate) fn plan_memory(
    g: &Graph,
    shapes: &[Shape],
    layouts: &[Layout],
    dtypes: &[DType],
) -> Result<MemoryPlan> {
    let n = g.len();

    // Liveness: last consumer per value; outputs pinned to the run's end.
    let mut last_use = vec![0usize; n];
    for (id, node) in g.nodes.iter().enumerate() {
        for &i in &node.inputs {
            last_use[i] = last_use[i].max(id);
        }
    }
    for &o in &g.outputs {
        last_use[o] = usize::MAX;
    }

    // Region sizes in arena slots (f32 quanta): byte-width-aware, so a u8
    // value occupies a quarter of the slots its f32 twin would.
    let sizes: Vec<usize> = shapes
        .iter()
        .zip(dtypes)
        .map(|(s, dt)| align_up(dt.slots(s.num_elements())))
        .collect();

    // Slot merging: alias and in-place decisions.
    let mut slots = Slots::new(n);
    let mut inplace: Vec<Option<usize>> = vec![None; n];
    let mut reused = 0usize;
    // A slot's live interval ends at the max `last_use` of its members;
    // track it incrementally at each slot root so in-place legality ("the
    // storage dies here") accounts for *every* value sharing the storage,
    // not just the direct input.
    let mut slot_end: Vec<usize> = last_use.clone();
    for (id, node) in g.nodes.iter().enumerate() {
        let merge = match &node.op {
            // Read-only reinterpretations always share their producer's
            // storage: Flatten is a shape view, Dropout is the identity at
            // inference time.
            Op::Flatten | Op::Dropout => Some(0),
            // Relu may overwrite its input iff that storage is never read
            // after this node.
            Op::Relu => {
                let root = slots.find(node.inputs[0]);
                (slot_end[root] == id).then_some(0)
            }
            // Add may accumulate into either input under the same death
            // rule — provided the two inputs do not already share storage
            // (add(x, x) must not turn into x += x while reading x).
            Op::Add => {
                let ra = slots.find(node.inputs[0]);
                let rb = slots.find(node.inputs[1]);
                if ra == rb {
                    None
                } else if slot_end[ra] == id {
                    Some(0)
                } else if slot_end[rb] == id {
                    Some(1)
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(pos) = merge {
            let input = node.inputs[pos];
            // Alias requires matching physical size: Flatten preserves the
            // element count by construction, and Relu/Add are element-wise.
            debug_assert_eq!(sizes[input], sizes[id]);
            let merged_end = slot_end[slots.find(id)]
                .max(slot_end[slots.find(input)])
                .max(last_use[id]);
            slots.union(id, input);
            let root = slots.find(id);
            slot_end[root] = merged_end;
            inplace[id] = Some(pos);
            reused += 1;
        } else {
            let root = slots.find(id);
            slot_end[root] = slot_end[root].max(last_use[id]);
        }
    }

    // One storage request per slot root, spanning from its earliest member
    // definition to its latest member use; plus one request per padded
    // scheduled conv for pad scratch, live only at that node.
    let mut request_of_root: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut ranges: Vec<LiveRange> = Vec::new();
    for id in 0..n {
        let root = slots.find(id);
        match request_of_root.get(&root) {
            Some(&req) => {
                let r = &mut ranges[req];
                r.start = r.start.min(id);
                r.end = r.end.max(last_use[id]);
                debug_assert_eq!(r.len, sizes[id]);
            }
            None => {
                request_of_root.insert(root, ranges.len());
                ranges.push(LiveRange { start: id, end: last_use[id], len: sizes[id] });
            }
        }
    }
    let mut scratch_reqs: Vec<(usize, usize)> = Vec::new(); // (node, range idx)
    let mut scratch_bytes = 0usize;
    for (id, node) in g.nodes.iter().enumerate() {
        if let Op::Conv2d { params, schedule: Some(s), .. } = &node.op {
            let batch = shapes[node.inputs[0]].dims().first().copied().unwrap_or(1);
            let len = padded_input_len(params, s.ic_bn, batch);
            if len > 0 {
                // A quantized conv pads u8 elements; the reservation is in
                // arena slots either way.
                let aligned = align_up(dtypes[node.inputs[0]].slots(len));
                scratch_reqs.push((id, ranges.len()));
                ranges.push(LiveRange { start: id, end: id, len: aligned });
                scratch_bytes += aligned * 4;
            }
        }
    }

    let (range_offsets, arena_len) = pack_live_ranges(&ranges);

    let mut offsets = vec![0usize; n];
    for (id, off) in offsets.iter_mut().enumerate() {
        let root = slots.find(id);
        *off = range_offsets[request_of_root[&root]];
    }
    let mut scratch: Vec<Option<(usize, usize)>> = vec![None; n];
    for &(id, req) in &scratch_reqs {
        let Op::Conv2d { params, schedule: Some(s), .. } = &g.nodes[id].op else {
            unreachable!("scratch request on non-conv node");
        };
        let batch = shapes[g.nodes[id].inputs[0]].dims().first().copied().unwrap_or(1);
        // The kernel wants the exact (unaligned) length; alignment padding
        // only widens the reservation.
        scratch[id] = Some((range_offsets[req], padded_input_len(params, s.ic_bn, batch)));
    }

    // Hard self-check: simultaneously-live requests must occupy disjoint
    // arena ranges. This is the invariant every unsafe arena view in the
    // executor relies on; violating it is a compiler bug, not a user error.
    for i in 0..ranges.len() {
        for j in i + 1..ranges.len() {
            let (a, b) = (&ranges[i], &ranges[j]);
            if a.len == 0 || b.len == 0 || !a.overlaps(b) {
                continue;
            }
            let (oa, ob) = (range_offsets[i], range_offsets[j]);
            if oa < ob + b.len && ob < oa + a.len {
                return Err(NeoError::Internal(format!(
                    "memory plan overlap: regions [{oa}, {}) and [{ob}, {}) are both live \
                     over nodes [{}, {}]",
                    oa + a.len,
                    ob + b.len,
                    a.start.max(b.start),
                    a.end.min(b.end),
                )));
            }
        }
    }
    let _ = layouts; // layouts participate via shapes; kept for signature symmetry

    let naive_bytes: usize =
        shapes.iter().zip(dtypes).map(|(s, dt)| s.num_elements() * dt.size_bytes()).sum();
    // Batch from the first graph input: every context built from this plan
    // serves that many images per run, which the report surfaces so a
    // context pool's memory bill is `pool_bytes(workers)`.
    let batch = g
        .nodes
        .iter()
        .enumerate()
        .find(|(_, node)| matches!(node.op, Op::Input { .. }))
        .and_then(|(id, _)| shapes[id].dims().first().copied())
        .unwrap_or(1);
    Ok(MemoryPlan {
        offsets,
        scratch,
        inplace,
        arena_len,
        report: MemoryReport {
            planned_peak_bytes: arena_len * 4,
            naive_bytes,
            reused,
            scratch_bytes,
            batch,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_respects_overlapping_intervals() {
        let ranges = vec![
            LiveRange { start: 0, end: 2, len: 32 },
            LiveRange { start: 1, end: 3, len: 32 },
            LiveRange { start: 4, end: 5, len: 32 },
        ];
        let (off, total) = pack_live_ranges(&ranges);
        // First two overlap in time → disjoint offsets; third reuses space.
        assert_ne!(off[0], off[1]);
        assert_eq!(total, 64);
        assert!(off[2] < 64);
    }

    #[test]
    fn packing_prefers_tightest_gap() {
        // A big region and a small region die; a small request should land
        // in the small gap, not the big one.
        let ranges = vec![
            LiveRange { start: 0, end: 10, len: 64 }, // pinned wide
            LiveRange { start: 0, end: 1, len: 16 },  // small, dies early
            LiveRange { start: 0, end: 1, len: 48 },  // big, dies early
            LiveRange { start: 2, end: 3, len: 16 },  // wants the 16-gap
            LiveRange { start: 2, end: 3, len: 48 },  // wants the 48-gap
        ];
        let (off, total) = pack_live_ranges(&ranges);
        assert_eq!(total, 128);
        // The late small request reuses the early small region's slot and
        // the late big one the big slot (sizes make the mapping unique).
        assert_eq!(off[3], off[1]);
        assert_eq!(off[4], off[2]);
    }

    #[test]
    fn packing_keeps_alignment() {
        let ranges: Vec<LiveRange> = (0..17)
            .map(|i| LiveRange { start: i % 5, end: i % 5 + 2, len: 16 * (1 + i % 3) })
            .collect();
        let (off, _) = pack_live_ranges(&ranges);
        for o in off {
            assert_eq!(o % ALIGN_ELEMS, 0);
        }
    }

    #[test]
    fn zero_len_ranges_are_ignored() {
        let ranges = vec![
            LiveRange { start: 0, end: 1, len: 0 },
            LiveRange { start: 0, end: 1, len: 16 },
        ];
        let (off, total) = pack_live_ranges(&ranges);
        assert_eq!(total, 16);
        assert_eq!(off[1], 0);
    }

    #[test]
    fn pinned_ranges_never_reused() {
        let ranges = vec![
            LiveRange { start: 0, end: usize::MAX, len: 16 },
            LiveRange { start: 5, end: 6, len: 16 },
        ];
        let (off, total) = pack_live_ranges(&ranges);
        assert_ne!(off[0], off[1]);
        assert_eq!(total, 32);
    }
}
