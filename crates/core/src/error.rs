//! Top-level error type.
//!
//! Serving-grade fault containment demands that every failure — a bad user
//! input, a kernel precondition violation, a corrupt scheme database, even
//! a panic inside kernel code — surfaces as a *typed* error from the public
//! API instead of aborting the process. Execution-time failures carry the
//! node id and operator name of the failing graph node so a production log
//! line localizes the fault without a debugger.

use std::fmt;

use neocpu_graph::GraphError;
use neocpu_kernels::KernelError;
use neocpu_tensor::TensorError;

/// Errors from compilation or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum NeoError {
    /// Graph construction/pass failure.
    Graph(GraphError),
    /// Kernel invocation failure.
    Kernel(KernelError),
    /// Tensor operation failure.
    Tensor(TensorError),
    /// Input tensors handed to `Module::run` do not match the graph.
    BadInput(String),
    /// Internal invariant broken (a compiler bug, not user error).
    Internal(String),
    /// The scheme database could not be loaded or parsed.
    Database(String),
    /// Kernel or thread-pool code panicked while executing a node; the
    /// unwind was caught at the executor's panic boundary and converted
    /// into this error, leaving the module and its pool reusable.
    Panicked {
        /// Graph node whose execution panicked.
        node: usize,
        /// Operator name of that node (e.g. `"conv2d"`).
        op: &'static str,
        /// Best-effort panic message.
        message: String,
    },
    /// Execution of a node failed; wraps the underlying error with the
    /// node's identity for fault localization.
    AtNode {
        /// Graph node whose execution failed.
        node: usize,
        /// Operator name of that node.
        op: &'static str,
        /// The underlying failure.
        source: Box<NeoError>,
    },
    /// The compile-time module verifier rejected a node before execution.
    Verify {
        /// Graph node that failed verification.
        node: usize,
        /// Operator name of that node.
        op: &'static str,
        /// The violated invariant.
        message: String,
    },
    /// An armed failpoint fired (fault-injection builds only).
    Fault {
        /// Name of the failpoint that fired.
        failpoint: &'static str,
    },
    /// A serving-engine protocol violation: re-submitting an in-flight
    /// request, reading outputs of a request that never completed, or
    /// building an engine over a module the batcher cannot serve.
    Serve(String),
    /// A component was configured with invalid options (e.g. a serve
    /// engine with zero workers or a zero-capacity queue). Returned at
    /// construction time, before anything could hang or panic downstream.
    Config(String),
    /// Admission control rejected (or shed) a request because the bounded
    /// submission queue was full. Backpressure as an answer instead of a
    /// stall: callers can retry, degrade, or surface a protocol-level
    /// "busy" response.
    Busy {
        /// Queue depth observed at the rejection.
        queue_depth: usize,
    },
    /// The request's deadline passed before it completed. Expired requests
    /// are skipped by the batcher — they never execute.
    DeadlineExceeded,
    /// The engine is draining or stopped; the request was not (or will not
    /// be) served.
    Shutdown,
    /// The serve worker holding this request died (a panic escaped the
    /// per-batch boundary) or exceeded its stall budget; the watchdog
    /// failed the in-flight slots and respawned the worker.
    WorkerLost {
        /// Index of the lost worker.
        worker: usize,
        /// Why the worker was retired (panic message or stall report).
        reason: String,
    },
}

impl NeoError {
    /// Walks [`NeoError::AtNode`] wrappers down to the underlying error.
    pub fn root_cause(&self) -> &NeoError {
        match self {
            Self::AtNode { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for NeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Graph(e) => write!(f, "graph error: {e}"),
            Self::Kernel(e) => write!(f, "kernel error: {e}"),
            Self::Tensor(e) => write!(f, "tensor error: {e}"),
            Self::BadInput(m) => write!(f, "bad input: {m}"),
            Self::Internal(m) => write!(f, "internal error: {m}"),
            Self::Database(m) => write!(f, "scheme database error: {m}"),
            Self::Panicked { node, op, message } => {
                write!(f, "node {node} ({op}) panicked: {message}")
            }
            Self::AtNode { node, op, source } => {
                write!(f, "node {node} ({op}): {source}")
            }
            Self::Verify { node, op, message } => {
                write!(f, "verification failed at node {node} ({op}): {message}")
            }
            Self::Fault { failpoint } => {
                write!(f, "injected fault at failpoint '{failpoint}'")
            }
            Self::Serve(m) => write!(f, "serving error: {m}"),
            Self::Config(m) => write!(f, "invalid configuration: {m}"),
            Self::Busy { queue_depth } => {
                write!(f, "engine busy: submission queue full at depth {queue_depth}")
            }
            Self::DeadlineExceeded => write!(f, "deadline exceeded before completion"),
            Self::Shutdown => write!(f, "engine is shut down"),
            Self::WorkerLost { worker, reason } => {
                write!(f, "serve worker {worker} lost: {reason}")
            }
        }
    }
}

impl std::error::Error for NeoError {}

impl From<GraphError> for NeoError {
    fn from(e: GraphError) -> Self {
        Self::Graph(e)
    }
}

impl From<KernelError> for NeoError {
    fn from(e: KernelError) -> Self {
        Self::Kernel(e)
    }
}

impl From<TensorError> for NeoError {
    fn from(e: TensorError) -> Self {
        Self::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_cause_unwraps_nested_context() {
        let inner = NeoError::Kernel(KernelError::BadSchedule("x".into()));
        let wrapped = NeoError::AtNode {
            node: 3,
            op: "conv2d",
            source: Box::new(NeoError::AtNode {
                node: 3,
                op: "conv2d",
                source: Box::new(inner.clone()),
            }),
        };
        assert_eq!(wrapped.root_cause(), &inner);
        assert_eq!(inner.root_cause(), &inner);
    }

    #[test]
    fn lifecycle_errors_render_and_compare() {
        assert_eq!(
            NeoError::Busy { queue_depth: 7 }.to_string(),
            "engine busy: submission queue full at depth 7"
        );
        assert_eq!(NeoError::DeadlineExceeded, NeoError::DeadlineExceeded);
        assert!(NeoError::Shutdown.to_string().contains("shut down"));
        let lost = NeoError::WorkerLost { worker: 2, reason: "stalled".into() };
        assert!(lost.to_string().contains("worker 2"));
        assert!(NeoError::Config("workers == 0".into()).to_string().contains("workers == 0"));
    }

    #[test]
    fn display_includes_node_context() {
        let e = NeoError::Panicked { node: 7, op: "conv2d", message: "boom".into() };
        assert_eq!(e.to_string(), "node 7 (conv2d) panicked: boom");
        let v = NeoError::Verify { node: 2, op: "layout_transform", message: "bad block".into() };
        assert!(v.to_string().contains("node 2 (layout_transform)"));
    }
}
