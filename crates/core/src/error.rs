//! Top-level error type.

use std::fmt;

use neocpu_graph::GraphError;
use neocpu_kernels::KernelError;
use neocpu_tensor::TensorError;

/// Errors from compilation or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum NeoError {
    /// Graph construction/pass failure.
    Graph(GraphError),
    /// Kernel invocation failure.
    Kernel(KernelError),
    /// Tensor operation failure.
    Tensor(TensorError),
    /// Input tensors handed to `Module::run` do not match the graph.
    BadInput(String),
    /// Internal invariant broken (a compiler bug, not user error).
    Internal(String),
}

impl fmt::Display for NeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Graph(e) => write!(f, "graph error: {e}"),
            Self::Kernel(e) => write!(f, "kernel error: {e}"),
            Self::Tensor(e) => write!(f, "tensor error: {e}"),
            Self::BadInput(m) => write!(f, "bad input: {m}"),
            Self::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for NeoError {}

impl From<GraphError> for NeoError {
    fn from(e: GraphError) -> Self {
        Self::Graph(e)
    }
}

impl From<KernelError> for NeoError {
    fn from(e: KernelError) -> Self {
        Self::Kernel(e)
    }
}

impl From<TensorError> for NeoError {
    fn from(e: TensorError) -> Self {
        Self::Tensor(e)
    }
}
