//! Fault-injection framework for exercising the executor's containment
//! boundaries.
//!
//! The runtime defines a small set of **named failpoints** at the places a
//! serving process realistically fails: kernel entry, output-tensor
//! allocation, layout transformation, scheme-database loading, and the body
//! executed by thread-pool workers. A test (or a chaos harness) *arms* a
//! failpoint with a deterministic [`Trigger`] and a [`FaultMode`]; the next
//! time execution reaches it, the failpoint either returns a typed
//! [`crate::NeoError::Fault`] or panics — proving that `Module::run`
//! surfaces an `Err`, the thread pool stays usable, and a subsequent clean
//! run succeeds.
//!
//! The whole mechanism is compiled in only under the `fault-injection`
//! cargo feature; release builds pay nothing (the internal `fire` hook is
//! an inlined no-op). The registry is process-global, so tests that arm
//! failpoints must serialize themselves (see `tests/fault_injection.rs`).

/// Failpoint at the entry of every compute-op kernel invocation.
pub const KERNEL_ENTRY: &str = "kernel-entry";
/// Failpoint at every output-tensor allocation in the executor.
pub const TENSOR_ALLOC: &str = "tensor-alloc";
/// Failpoint at every explicit layout transformation.
pub const LAYOUT_TRANSFORM: &str = "layout-transform";
/// Failpoint at scheme-database loading ([`crate::load_scheme_db`]).
pub const DB_LOAD: &str = "db-load";
/// Failpoint inside the body every thread-pool worker executes. Fires as a
/// panic regardless of [`FaultMode`] (a worker body cannot return an
/// error), exercising the pool's unwind containment.
pub const POOL_WORKER: &str = "pool-worker";
/// Failpoint at every serve-engine batcher wake-up, fired after a batch is
/// formed but before it executes. `Error` mode fails the batch with a
/// typed fault (contained; the worker keeps serving); `Panic` mode escapes
/// the per-batch boundary, so the worker fails its in-flight slots,
/// retires, and the watchdog must respawn it.
pub const BATCHER_WAKEUP: &str = "batcher-wakeup";
/// Failpoint at serve-worker thread startup (before the worker's pooled
/// context is built). Always manifests as a panic, killing the nascent
/// worker — the watchdog's respawn loop must converge once it stops
/// firing.
pub const WORKER_SPAWN: &str = "worker-spawn";
/// Failpoint at the serve batcher's deadline check. When it fires (any
/// mode), a deadline-carrying request is treated as already expired —
/// simulating clock skew between the submitting and the serving thread.
pub const DEADLINE_SKEW: &str = "deadline-clock-skew";

#[cfg(feature = "fault-injection")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    /// How an armed failpoint manifests when it fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultMode {
        /// Return [`crate::NeoError::Fault`] from the failpoint.
        Error,
        /// Panic at the failpoint (exercising the panic boundary).
        Panic,
    }

    /// When an armed failpoint fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Trigger {
        /// Fire at every hit.
        Always,
        /// Fire exactly once, on the n-th hit (1-based), then stay silent.
        Nth(u64),
        /// Fire on every n-th hit (the n-th, 2n-th, …); `EveryNth(1)` is
        /// `Always`. `EveryNth(0)` never fires.
        EveryNth(u64),
        /// Fire each hit independently with probability `permille`/1000,
        /// drawn from a dedicated xorshift64* stream seeded with `seed` —
        /// the same seed always yields the same firing schedule, so a
        /// chaos drill that fails is reproducible from its printed seed.
        Probability {
            /// Firing probability in thousandths (0 = never, 1000 = always).
            permille: u32,
            /// Seed of the failpoint's private random stream.
            seed: u64,
        },
    }

    #[derive(Debug)]
    struct Failpoint {
        trigger: Trigger,
        mode: FaultMode,
        hits: u64,
        /// xorshift64* state for [`Trigger::Probability`]; unused otherwise.
        rng: u64,
    }

    fn registry() -> &'static Mutex<HashMap<&'static str, Failpoint>> {
        static REGISTRY: OnceLock<Mutex<HashMap<&'static str, Failpoint>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock() -> std::sync::MutexGuard<'static, HashMap<&'static str, Failpoint>> {
        // A panic while holding the lock is expected (Panic mode fires
        // between lock acquisitions, but a poisoned registry must not
        // cascade into unrelated tests).
        registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Arms `point` (one of the `faults::*` constants) with a trigger and
    /// failure mode, replacing any previous arming and resetting its hit
    /// counter (and, for [`Trigger::Probability`], its random stream).
    pub fn arm(point: &'static str, trigger: Trigger, mode: FaultMode) {
        let rng = match trigger {
            // xorshift64* needs a non-zero state; fold seed 0 to a fixed
            // odd constant so arming stays deterministic.
            Trigger::Probability { seed, .. } => {
                if seed == 0 {
                    0x9E37_79B9_7F4A_7C15
                } else {
                    seed
                }
            }
            _ => 0,
        };
        lock().insert(point, Failpoint { trigger, mode, hits: 0, rng });
    }

    /// Disarms `point`; subsequent hits pass through.
    pub fn disarm(point: &str) {
        lock().remove(point);
    }

    /// Disarms every failpoint (test hygiene between cases).
    pub fn disarm_all() {
        lock().clear();
    }

    /// Number of times `point` has been reached since it was armed.
    pub fn hits(point: &str) -> u64 {
        lock().get(point).map_or(0, |f| f.hits)
    }

    /// Records a hit; returns the failure mode to apply, if the trigger
    /// decided to fire.
    fn check(point: &str) -> Option<FaultMode> {
        let mut reg = lock();
        let fp = reg.get_mut(point)?;
        fp.hits += 1;
        let fire = match fp.trigger {
            Trigger::Always => true,
            Trigger::Nth(n) => fp.hits == n,
            Trigger::EveryNth(n) => n > 0 && fp.hits % n == 0,
            Trigger::Probability { permille, .. } => {
                // xorshift64* step (Vigna); high bits feed the draw.
                fp.rng ^= fp.rng >> 12;
                fp.rng ^= fp.rng << 25;
                fp.rng ^= fp.rng >> 27;
                let draw = fp.rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32;
                (draw % 1000) < u64::from(permille)
            }
        };
        fire.then_some(fp.mode)
    }

    pub(crate) fn fire(point: &'static str) -> crate::Result<()> {
        match check(point) {
            None => Ok(()),
            Some(FaultMode::Error) => Err(crate::NeoError::Fault { failpoint: point }),
            Some(FaultMode::Panic) => panic!("injected panic at failpoint '{point}'"),
        }
    }

    pub(crate) fn fire_in_worker(point: &'static str) {
        if check(point).is_some() {
            panic!("injected panic at failpoint '{point}'");
        }
    }

    /// Behavioral failpoint: reports whether `point` fired without
    /// erroring or panicking (the caller perturbs its own logic instead —
    /// e.g. [`super::DEADLINE_SKEW`] forces a deadline check to expire).
    pub(crate) fn fire_bool(point: &'static str) -> bool {
        check(point).is_some()
    }

    /// [`Parallelism`](neocpu_threadpool::Parallelism) adapter the executor
    /// wraps around its pool so the [`super::POOL_WORKER`] failpoint runs
    /// inside every worker's body.
    pub(crate) struct WorkerFaultPar<'a>(pub &'a dyn neocpu_threadpool::Parallelism);

    impl neocpu_threadpool::Parallelism for WorkerFaultPar<'_> {
        fn num_threads(&self) -> usize {
            self.0.num_threads()
        }

        fn run(
            &self,
            total: usize,
            body: &(dyn Fn(usize, std::ops::Range<usize>) + Sync),
        ) {
            self.0.run(total, &|worker, range| {
                fire_in_worker(super::POOL_WORKER);
                body(worker, range);
            });
        }
    }
}

#[cfg(feature = "fault-injection")]
pub use imp::{arm, disarm, disarm_all, hits, FaultMode, Trigger};

#[cfg(feature = "fault-injection")]
pub(crate) use imp::{fire, fire_bool, fire_in_worker, WorkerFaultPar};

/// No-op hook compiled when fault injection is disabled.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn fire(_point: &'static str) -> crate::Result<()> {
    Ok(())
}

/// No-op panic hook compiled when fault injection is disabled.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn fire_in_worker(_point: &'static str) {}

/// No-op behavioral hook compiled when fault injection is disabled.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn fire_bool(_point: &'static str) -> bool {
    false
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn nth_trigger_fires_exactly_once() {
        // Use a point name no other test arms; the registry is global.
        arm(TENSOR_ALLOC, Trigger::Nth(2), FaultMode::Error);
        assert!(fire(TENSOR_ALLOC).is_ok());
        assert!(fire(TENSOR_ALLOC).is_err());
        assert!(fire(TENSOR_ALLOC).is_ok());
        assert_eq!(hits(TENSOR_ALLOC), 3);
        disarm(TENSOR_ALLOC);
        assert!(fire(TENSOR_ALLOC).is_ok());
    }

    #[test]
    fn every_nth_trigger_fires_periodically() {
        arm(BATCHER_WAKEUP, Trigger::EveryNth(3), FaultMode::Error);
        let fired: Vec<bool> = (0..9).map(|_| fire(BATCHER_WAKEUP).is_err()).collect();
        assert_eq!(
            fired,
            [false, false, true, false, false, true, false, false, true]
        );
        // EveryNth(0) never fires.
        arm(BATCHER_WAKEUP, Trigger::EveryNth(0), FaultMode::Error);
        assert!((0..5).all(|_| fire(BATCHER_WAKEUP).is_ok()));
        disarm(BATCHER_WAKEUP);
    }

    #[test]
    fn probability_trigger_is_seed_deterministic() {
        let schedule = |seed: u64| -> Vec<bool> {
            arm(
                DEADLINE_SKEW,
                Trigger::Probability { permille: 300, seed },
                FaultMode::Error,
            );
            let v = (0..64).map(|_| fire(DEADLINE_SKEW).is_err()).collect();
            disarm(DEADLINE_SKEW);
            v
        };
        let a = schedule(42);
        let b = schedule(42);
        assert_eq!(a, b, "same seed must replay the same firing schedule");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(
            fired > 0 && fired < 64,
            "permille 300 over 64 draws should fire sometimes, not never/always \
             (fired {fired})"
        );
        // Seed 0 is legal (folded to a fixed non-zero state).
        let c = schedule(0);
        let d = schedule(0);
        assert_eq!(c, d);
    }

    #[test]
    fn fire_bool_reports_without_failing() {
        // Distinct point from the other tests: the registry is global and
        // unit tests run concurrently.
        arm(WORKER_SPAWN, Trigger::EveryNth(2), FaultMode::Error);
        assert!(!super::fire_bool(WORKER_SPAWN));
        assert!(super::fire_bool(WORKER_SPAWN));
        disarm(WORKER_SPAWN);
        assert!(!super::fire_bool(WORKER_SPAWN));
    }
}
