//! Fault-injection framework for exercising the executor's containment
//! boundaries.
//!
//! The runtime defines a small set of **named failpoints** at the places a
//! serving process realistically fails: kernel entry, output-tensor
//! allocation, layout transformation, scheme-database loading, and the body
//! executed by thread-pool workers. A test (or a chaos harness) *arms* a
//! failpoint with a deterministic [`Trigger`] and a [`FaultMode`]; the next
//! time execution reaches it, the failpoint either returns a typed
//! [`crate::NeoError::Fault`] or panics — proving that `Module::run`
//! surfaces an `Err`, the thread pool stays usable, and a subsequent clean
//! run succeeds.
//!
//! The whole mechanism is compiled in only under the `fault-injection`
//! cargo feature; release builds pay nothing (the internal `fire` hook is
//! an inlined no-op). The registry is process-global, so tests that arm
//! failpoints must serialize themselves (see `tests/fault_injection.rs`).

/// Failpoint at the entry of every compute-op kernel invocation.
pub const KERNEL_ENTRY: &str = "kernel-entry";
/// Failpoint at every output-tensor allocation in the executor.
pub const TENSOR_ALLOC: &str = "tensor-alloc";
/// Failpoint at every explicit layout transformation.
pub const LAYOUT_TRANSFORM: &str = "layout-transform";
/// Failpoint at scheme-database loading ([`crate::load_scheme_db`]).
pub const DB_LOAD: &str = "db-load";
/// Failpoint inside the body every thread-pool worker executes. Fires as a
/// panic regardless of [`FaultMode`] (a worker body cannot return an
/// error), exercising the pool's unwind containment.
pub const POOL_WORKER: &str = "pool-worker";

#[cfg(feature = "fault-injection")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    /// How an armed failpoint manifests when it fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultMode {
        /// Return [`crate::NeoError::Fault`] from the failpoint.
        Error,
        /// Panic at the failpoint (exercising the panic boundary).
        Panic,
    }

    /// When an armed failpoint fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Trigger {
        /// Fire at every hit.
        Always,
        /// Fire exactly once, on the n-th hit (1-based), then stay silent.
        Nth(u64),
    }

    #[derive(Debug)]
    struct Failpoint {
        trigger: Trigger,
        mode: FaultMode,
        hits: u64,
    }

    fn registry() -> &'static Mutex<HashMap<&'static str, Failpoint>> {
        static REGISTRY: OnceLock<Mutex<HashMap<&'static str, Failpoint>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock() -> std::sync::MutexGuard<'static, HashMap<&'static str, Failpoint>> {
        // A panic while holding the lock is expected (Panic mode fires
        // between lock acquisitions, but a poisoned registry must not
        // cascade into unrelated tests).
        registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Arms `point` (one of the `faults::*` constants) with a trigger and
    /// failure mode, replacing any previous arming and resetting its hit
    /// counter.
    pub fn arm(point: &'static str, trigger: Trigger, mode: FaultMode) {
        lock().insert(point, Failpoint { trigger, mode, hits: 0 });
    }

    /// Disarms `point`; subsequent hits pass through.
    pub fn disarm(point: &str) {
        lock().remove(point);
    }

    /// Disarms every failpoint (test hygiene between cases).
    pub fn disarm_all() {
        lock().clear();
    }

    /// Number of times `point` has been reached since it was armed.
    pub fn hits(point: &str) -> u64 {
        lock().get(point).map_or(0, |f| f.hits)
    }

    /// Records a hit; returns the failure mode to apply, if the trigger
    /// decided to fire.
    fn check(point: &str) -> Option<FaultMode> {
        let mut reg = lock();
        let fp = reg.get_mut(point)?;
        fp.hits += 1;
        let fire = match fp.trigger {
            Trigger::Always => true,
            Trigger::Nth(n) => fp.hits == n,
        };
        fire.then_some(fp.mode)
    }

    pub(crate) fn fire(point: &'static str) -> crate::Result<()> {
        match check(point) {
            None => Ok(()),
            Some(FaultMode::Error) => Err(crate::NeoError::Fault { failpoint: point }),
            Some(FaultMode::Panic) => panic!("injected panic at failpoint '{point}'"),
        }
    }

    pub(crate) fn fire_in_worker(point: &'static str) {
        if check(point).is_some() {
            panic!("injected panic at failpoint '{point}'");
        }
    }

    /// [`Parallelism`](neocpu_threadpool::Parallelism) adapter the executor
    /// wraps around its pool so the [`super::POOL_WORKER`] failpoint runs
    /// inside every worker's body.
    pub(crate) struct WorkerFaultPar<'a>(pub &'a dyn neocpu_threadpool::Parallelism);

    impl neocpu_threadpool::Parallelism for WorkerFaultPar<'_> {
        fn num_threads(&self) -> usize {
            self.0.num_threads()
        }

        fn run(
            &self,
            total: usize,
            body: &(dyn Fn(usize, std::ops::Range<usize>) + Sync),
        ) {
            self.0.run(total, &|worker, range| {
                fire_in_worker(super::POOL_WORKER);
                body(worker, range);
            });
        }
    }
}

#[cfg(feature = "fault-injection")]
pub use imp::{arm, disarm, disarm_all, hits, FaultMode, Trigger};

#[cfg(feature = "fault-injection")]
pub(crate) use imp::{fire, WorkerFaultPar};

/// No-op hook compiled when fault injection is disabled.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn fire(_point: &'static str) -> crate::Result<()> {
    Ok(())
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn nth_trigger_fires_exactly_once() {
        // Use a point name no other test arms; the registry is global.
        arm(TENSOR_ALLOC, Trigger::Nth(2), FaultMode::Error);
        assert!(fire(TENSOR_ALLOC).is_ok());
        assert!(fire(TENSOR_ALLOC).is_err());
        assert!(fire(TENSOR_ALLOC).is_ok());
        assert_eq!(hits(TENSOR_ALLOC), 3);
        disarm(TENSOR_ALLOC);
        assert!(fire(TENSOR_ALLOC).is_ok());
    }
}
