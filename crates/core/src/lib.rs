//! NeoCPU reproduction — end-to-end CNN inference optimization on CPUs.
//!
//! This crate is the user-facing assembly of the stack: describe a CPU
//! target, pick an optimization level, [`compile`] a model graph into an
//! executable [`Module`], and run inferences.
//!
//! ```
//! use neocpu::{compile, CompileOptions, CpuTarget, OptLevel};
//! use neocpu_graph::GraphBuilder;
//! use neocpu_tensor::{Layout, Tensor};
//!
//! // A tiny two-layer CNN.
//! let mut b = GraphBuilder::new(7);
//! let x = b.input([1, 16, 16, 16]);
//! let c1 = b.conv_bn_relu(x, 32, 3, 1, 1);
//! let c2 = b.conv_bn_relu(c1, 32, 3, 1, 1);
//! let g = b.finish(vec![c2]);
//!
//! let target = CpuTarget::host();
//! let module = compile(&g, &target, &CompileOptions::level(OptLevel::O2)).unwrap();
//! let input = Tensor::random([1, 16, 16, 16], Layout::Nchw, 1, 1.0).unwrap();
//! let out = module.run(&[input]).unwrap();
//! assert_eq!(out[0].shape().dims(), &[1, 32, 16, 16]);
//! ```
//!
//! The optimization ladder matches Table 3 of the paper:
//!
//! * [`OptLevel::O0`] — plain NCHW direct convolution (the normalized
//!   baseline row);
//! * [`OptLevel::O1`] — blocked `NCHW[x]c` CONVs, but each wrapped in its
//!   own layout transforms ("Layout Opt.");
//! * [`OptLevel::O2`] — graph-level transform elimination with a uniform
//!   block ("Transform Elim.");
//! * [`OptLevel::O3`] — per-CONV schemes from the global search
//!   ("Global Search").

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod compile;
mod error;
mod executor;
pub mod faults;
pub mod memory;
mod quantize;
pub mod serve;
pub mod shard;
mod target;

pub use compile::{
    compile, compile_with_db, compile_with_pool, compile_with_report, load_scheme_db,
    load_scheme_db_lenient, CompileOptions, CompileReport, DroppedScheme, OptLevel, PoolChoice,
    ScheduleFallback, SearchStrategy,
};
pub use error::NeoError;
pub use executor::{Module, OpProfile, RunContext};
pub use quantize::{
    compile_quantized, compile_quantized_with_db, QuantizeOptions, QuantizeReport,
    DEFAULT_INT8_ERROR_BUDGET,
};
pub use memory::MemoryReport;
pub use serve::{
    EngineHealth, LatencyClass, Request, ServeEngine, ServeOptions, ServeReport, ShedPolicy,
};
pub use shard::{ShardReport, ShardedEngine};
pub use target::{CpuTarget, IsaKind};

pub use neocpu_threadpool::affinity::CoreSet;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NeoError>;
