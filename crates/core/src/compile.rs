//! The compile pipeline: passes + search + weight pre-transformation.

use std::collections::HashMap;
use std::sync::Arc;

use neocpu_graph::passes::{
    fuse_ops, plan_assigned, plan_uniform, precompute_weights, simplify_inference,
    wrap_convs_with_transforms, UniformPlanCfg,
};
use neocpu_graph::{infer_layouts, infer_shapes, Graph};
use neocpu_search::{
    extract_problem, local_search, solve, GlobalCfg, LocalSearchCfg,
    SchemeDatabase, TimedMeasurer,
};
use neocpu_threadpool::{OmpLikePool, Parallelism, Sequential, ThreadPool};

use crate::executor::Module;
use crate::target::CpuTarget;
use crate::Result;

/// Optimization levels — the Table 3 ablation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// Plain NCHW direct convolution (normalized baseline).
    O0,
    /// Blocked CONVs with per-op transform pairs ("Layout Opt.").
    O1,
    /// Uniform block + graph transform elimination ("Transform Elim.").
    O2,
    /// Global scheme search ("Global Search").
    O3,
}

/// Thread-pool implementation choice (the Figure 4 axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolChoice {
    /// The custom SPSC fork-join pool (§3.1.2).
    #[default]
    Custom,
    /// The OpenMP-style mutex/condvar pool.
    OmpLike,
    /// Single-threaded inline execution.
    Sequential,
}

/// How the O3 local search prices candidate schedules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchStrategy {
    /// Deterministic analytical model only (fast, used in tests).
    Analytical,
    /// Full timed sweep (the paper's hours-long method, scaled by repeats).
    Timed {
        /// Timed repetitions per candidate.
        repeats: usize,
    },
    /// Analytical pre-selection of `preselect` candidates, then timed
    /// measurement of those (the harness default).
    Hybrid {
        /// Candidates surviving pre-selection.
        preselect: usize,
        /// Timed repetitions per surviving candidate.
        repeats: usize,
    },
}

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileOptions {
    /// Optimization level (Table 3 ladder).
    pub opt_level: OptLevel,
    /// Epilogue fusion (on for every published configuration; off models a
    /// framework with weaker graph support).
    pub fuse: bool,
    /// Executor threads (caller + workers).
    pub threads: usize,
    /// Thread-pool implementation.
    pub pool: PoolChoice,
    /// Local-search pricing for O3.
    pub search: SearchStrategy,
    /// Candidates per CONV entering the global search.
    pub keep_candidates: usize,
}

impl CompileOptions {
    /// Defaults at a given level: fusion on, one thread, custom pool,
    /// analytical search.
    pub fn level(opt_level: OptLevel) -> Self {
        Self {
            opt_level,
            fuse: true,
            threads: 1,
            pool: PoolChoice::Custom,
            search: SearchStrategy::Analytical,
            keep_candidates: 8,
        }
    }

    /// Sets the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the pool implementation.
    pub fn with_pool(mut self, pool: PoolChoice) -> Self {
        self.pool = pool;
        self
    }
}

/// Compiles `graph` for `target`, using a throwaway scheme database.
///
/// # Errors
///
/// Returns an error if the graph is invalid or a pass fails.
pub fn compile(graph: &Graph, target: &CpuTarget, opts: &CompileOptions) -> Result<Module> {
    let mut db = SchemeDatabase::new();
    compile_with_db(graph, target, opts, &mut db)
}

/// Compiles `graph` for `target`, reading/writing local-search results in
/// `db` (§3.3.1's cross-model workload cache).
///
/// # Errors
///
/// Returns an error if the graph is invalid or a pass fails.
pub fn compile_with_db(
    graph: &Graph,
    target: &CpuTarget,
    opts: &CompileOptions,
    db: &mut SchemeDatabase,
) -> Result<Module> {
    let simplified = simplify_inference(graph)?;
    let fused = if opts.fuse { fuse_ops(&simplified)? } else { simplified };

    let cfg = UniformPlanCfg {
        block: target.preferred_block(),
        reg_n: default_reg_n(target),
        unroll: true,
    };
    let planned = match opts.opt_level {
        OptLevel::O0 => fused,
        OptLevel::O1 => wrap_convs_with_transforms(&fused, &cfg)?,
        OptLevel::O2 => plan_uniform(&fused, &cfg)?,
        OptLevel::O3 => {
            let schedules = global_search(&fused, target, opts, db)?;
            plan_assigned(&fused, &schedules, &cfg)?
        }
    };
    let pre = precompute_weights(&planned)?;
    let shapes = infer_shapes(&pre)?;
    let layouts = infer_layouts(&pre, &shapes)?;
    let pool = make_pool(opts);
    Ok(Module::new(pre, shapes, layouts, pool, target.max_lanes()))
}

/// Compiles `graph` with a caller-supplied thread pool (used by the
/// benchmark harness to instrument parallel regions); `opts.pool` and
/// `opts.threads` are ignored.
///
/// # Errors
///
/// Returns an error if the graph is invalid or a pass fails.
pub fn compile_with_pool(
    graph: &Graph,
    target: &CpuTarget,
    opts: &CompileOptions,
    pool: Arc<dyn Parallelism>,
    db: &mut SchemeDatabase,
) -> Result<Module> {
    let module = compile_with_db(graph, target, opts, db)?;
    Ok(module.with_pool(pool))
}

/// Runs the two-stage search and returns per-conv schedules.
fn global_search(
    g: &Graph,
    target: &CpuTarget,
    opts: &CompileOptions,
    db: &mut SchemeDatabase,
) -> Result<HashMap<neocpu_graph::NodeId, neocpu_kernels::ConvSchedule>> {
    let analytical = target.analytical_model();
    let local_cfg = match opts.search {
        SearchStrategy::Analytical => {
            LocalSearchCfg { preselect: None, keep: opts.keep_candidates, ..Default::default() }
        }
        SearchStrategy::Timed { .. } => {
            LocalSearchCfg { preselect: None, keep: opts.keep_candidates, ..Default::default() }
        }
        SearchStrategy::Hybrid { preselect, .. } => LocalSearchCfg {
            preselect: Some(preselect),
            keep: opts.keep_candidates,
            ..Default::default()
        },
    };
    let timed = match opts.search {
        SearchStrategy::Analytical => None,
        SearchStrategy::Timed { repeats } | SearchStrategy::Hybrid { repeats, .. } => {
            Some(TimedMeasurer { repeats, warmup: 1, max_lanes: target.max_lanes() })
        }
    };
    let tname = target.name.clone();
    let mut ranked = |_, params: &neocpu_kernels::Conv2dParams| {
        db.get_or_insert_with(&tname, params, || match timed {
            Some(t) => local_search(params, &t, &local_cfg),
            None => local_search(params, &analytical, &local_cfg),
        })
        .to_vec()
    };
    let problem = extract_problem(g, &mut ranked, &analytical)?;
    let (assignment, _obj) = solve(&problem, &GlobalCfg::default());
    Ok(problem.assignment_to_schedules(&assignment))
}

fn default_reg_n(target: &CpuTarget) -> usize {
    match target.isa {
        crate::IsaKind::Avx512 => 16,
        crate::IsaKind::Avx2 => 8,
        crate::IsaKind::Neon => 8,
        crate::IsaKind::Generic => 4,
    }
}

fn make_pool(opts: &CompileOptions) -> Arc<dyn Parallelism> {
    match (opts.pool, opts.threads) {
        (PoolChoice::Sequential, _) | (_, 0 | 1) => Arc::new(Sequential),
        (PoolChoice::Custom, n) => Arc::new(ThreadPool::new(n)),
        (PoolChoice::OmpLike, n) => Arc::new(OmpLikePool::new(n)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neocpu_graph::GraphBuilder;
    use neocpu_tensor::{Layout, Tensor};

    fn small_net() -> Graph {
        let mut b = GraphBuilder::new(5);
        let x = b.input([1, 8, 12, 12]);
        let c1 = b.conv_bn_relu(x, 16, 3, 1, 1);
        let p = b.max_pool(c1, 2, 2, 0);
        let c2 = b.conv_bn_relu(p, 16, 3, 1, 1);
        let f = b.flatten(c2);
        let d = b.dense(f, 4);
        let s = b.softmax(d);
        b.finish(vec![s])
    }

    #[test]
    fn all_levels_compile_and_agree() {
        let g = small_net();
        let target = CpuTarget::host();
        let input = Tensor::random([1, 8, 12, 12], Layout::Nchw, 3, 1.0).unwrap();
        let mut outputs = Vec::new();
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            let m = compile(&g, &target, &CompileOptions::level(level)).unwrap();
            let out = m.run(std::slice::from_ref(&input)).unwrap();
            outputs.push(out.into_iter().next().unwrap());
        }
        for o in &outputs[1..] {
            assert!(
                outputs[0].approx_eq(o, 1e-4),
                "optimization changed semantics: diff {}",
                outputs[0].max_abs_diff(o)
            );
        }
    }

    #[test]
    fn transform_counts_fall_along_the_ladder() {
        let g = small_net();
        let target = CpuTarget::host();
        let o1 = compile(&g, &target, &CompileOptions::level(OptLevel::O1)).unwrap();
        let o2 = compile(&g, &target, &CompileOptions::level(OptLevel::O2)).unwrap();
        assert!(o2.transform_count() < o1.transform_count());
        assert_eq!(o1.transform_count(), 4); // 2 convs × (in + out)
        assert_eq!(o2.transform_count(), 2); // entry + exit only
    }

    #[test]
    fn o3_reuses_database_entries() {
        let g = small_net();
        let target = CpuTarget::host();
        let mut db = SchemeDatabase::new();
        let opts = CompileOptions::level(OptLevel::O3);
        let _ = compile_with_db(&g, &target, &opts, &mut db).unwrap();
        let n = db.len();
        assert!(n >= 1);
        // Second compile hits the cache; the count is unchanged.
        let _ = compile_with_db(&g, &target, &opts, &mut db).unwrap();
        assert_eq!(db.len(), n);
    }

    #[test]
    fn narrower_target_still_correct() {
        let g = small_net();
        let input = Tensor::random([1, 8, 12, 12], Layout::Nchw, 4, 1.0).unwrap();
        let host = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O2)).unwrap();
        let neon =
            compile(&g, &CpuTarget::arm_a72_neon(), &CompileOptions::level(OptLevel::O2))
                .unwrap();
        let a = host.run(std::slice::from_ref(&input)).unwrap();
        let b = neon.run(std::slice::from_ref(&input)).unwrap();
        assert!(a[0].approx_eq(&b[0], 1e-4));
    }

    #[test]
    fn multithreaded_module_matches_sequential() {
        let g = small_net();
        let target = CpuTarget::host();
        let input = Tensor::random([1, 8, 12, 12], Layout::Nchw, 5, 1.0).unwrap();
        let seq = compile(&g, &target, &CompileOptions::level(OptLevel::O2)).unwrap();
        let par = compile(
            &g,
            &target,
            &CompileOptions::level(OptLevel::O2).with_threads(4),
        )
        .unwrap();
        let omp = compile(
            &g,
            &target,
            &CompileOptions::level(OptLevel::O2)
                .with_threads(4)
                .with_pool(PoolChoice::OmpLike),
        )
        .unwrap();
        let a = seq.run(std::slice::from_ref(&input)).unwrap();
        let b = par.run(std::slice::from_ref(&input)).unwrap();
        let c = omp.run(std::slice::from_ref(&input)).unwrap();
        assert!(a[0].approx_eq(&b[0], 1e-5));
        assert!(a[0].approx_eq(&c[0], 1e-5));
    }
}
