//! The compile pipeline: passes + search + weight pre-transformation.
//!
//! Serving-grade compilation adds two containment layers around the
//! optimization passes:
//!
//! 1. **Graceful degradation** — scheme-database entries (possibly loaded
//!    from a stale, corrupt, or foreign file) are verified against the
//!    current target *before* they can influence planning. Entries that
//!    fail are dropped and recorded in a [`CompileReport`]; a workload left
//!    with no viable scheme gets a synthesized conservative default rather
//!    than aborting compilation.
//! 2. **Module verification** — after all passes have run, every node of
//!    the final graph is checked against its invariants (topological
//!    inputs, parameter-index bounds, shape/layout agreement, conv schedule
//!    divisibility and register pressure for the target). A violation is a
//!    compiler bug or hostile input and surfaces as a typed
//!    [`NeoError::Verify`] instead of reaching kernel code.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use neocpu_graph::passes::{
    fuse_ops, plan_assigned, plan_uniform, precompute_weights, simplify_inference,
    wrap_convs_with_transforms, UniformPlanCfg,
};
use neocpu_graph::{infer_layouts, infer_shapes, Graph, NodeId, Op};
use neocpu_kernels::conv::{factors_descending, Conv2dParams, ConvSchedule};
use neocpu_search::{
    extract_problem, local_search, solve, CostModel, GlobalCfg, LocalSearchCfg, RankedScheme,
    SchemeDatabase, TimedMeasurer,
};
use neocpu_tensor::{DType, Layout, Shape};
use neocpu_threadpool::{OmpLikePool, Parallelism, Sequential, ThreadPool};

use crate::executor::Module;
use crate::target::CpuTarget;
use crate::{NeoError, Result};

/// Optimization levels — the Table 3 ablation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// Plain NCHW direct convolution (normalized baseline).
    O0,
    /// Blocked CONVs with per-op transform pairs ("Layout Opt.").
    O1,
    /// Uniform block + graph transform elimination ("Transform Elim.").
    O2,
    /// Global scheme search ("Global Search").
    O3,
}

/// Thread-pool implementation choice (the Figure 4 axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolChoice {
    /// The custom SPSC fork-join pool (§3.1.2).
    #[default]
    Custom,
    /// The OpenMP-style mutex/condvar pool.
    OmpLike,
    /// Single-threaded inline execution.
    Sequential,
}

/// How the O3 local search prices candidate schedules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchStrategy {
    /// Deterministic analytical model only (fast, used in tests).
    Analytical,
    /// Full timed sweep (the paper's hours-long method, scaled by repeats).
    Timed {
        /// Timed repetitions per candidate.
        repeats: usize,
    },
    /// Analytical pre-selection of `preselect` candidates, then timed
    /// measurement of those (the harness default).
    Hybrid {
        /// Candidates surviving pre-selection.
        preselect: usize,
        /// Timed repetitions per surviving candidate.
        repeats: usize,
    },
}

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileOptions {
    /// Optimization level (Table 3 ladder).
    pub opt_level: OptLevel,
    /// Epilogue fusion (on for every published configuration; off models a
    /// framework with weaker graph support).
    pub fuse: bool,
    /// Executor threads (caller + workers).
    pub threads: usize,
    /// Thread-pool implementation.
    pub pool: PoolChoice,
    /// Local-search pricing for O3.
    pub search: SearchStrategy,
    /// Candidates per CONV entering the global search.
    pub keep_candidates: usize,
}

impl CompileOptions {
    /// Defaults at a given level: fusion on, one thread, custom pool,
    /// analytical search.
    pub fn level(opt_level: OptLevel) -> Self {
        Self {
            opt_level,
            fuse: true,
            threads: 1,
            pool: PoolChoice::Custom,
            search: SearchStrategy::Analytical,
            keep_candidates: 8,
        }
    }

    /// Sets the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the pool implementation.
    pub fn with_pool(mut self, pool: PoolChoice) -> Self {
        self.pool = pool;
        self
    }
}

/// A scheme-database entry rejected by target verification during
/// compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct DroppedScheme {
    /// Conv node whose workload the entry belonged to.
    pub node: NodeId,
    /// The workload.
    pub params: Conv2dParams,
    /// The rejected schedule.
    pub schedule: ConvSchedule,
    /// Why it was rejected.
    pub reason: String,
}

/// A conv whose schedule was replaced by a synthesized default because no
/// verified candidate survived.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleFallback {
    /// Conv node that degraded.
    pub node: NodeId,
    /// The workload.
    pub params: Conv2dParams,
    /// The conservative schedule it runs with instead.
    pub fallback: ConvSchedule,
    /// Why degradation was necessary.
    pub reason: String,
}

/// Diagnostics from one compilation: what was dropped, what degraded.
///
/// A clean compile produces an empty report. A compile fed a corrupt or
/// target-mismatched scheme database still succeeds — the report is how a
/// serving process finds out it is running on fallback schedules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompileReport {
    /// Database entries rejected by verification.
    pub dropped_schemes: Vec<DroppedScheme>,
    /// Convs that degraded to a synthesized default schedule.
    pub fallbacks: Vec<ScheduleFallback>,
    /// The static memory plan's statistics: planned arena peak vs. the
    /// naive sum of all intermediate outputs, and how much was reused.
    pub memory: crate::memory::MemoryReport,
}

impl CompileReport {
    /// Whether compilation used every scheme as-is, with no degradation.
    pub fn is_clean(&self) -> bool {
        self.dropped_schemes.is_empty() && self.fallbacks.is_empty()
    }
}

/// Compiles `graph` for `target`, using a throwaway scheme database.
///
/// # Errors
///
/// Returns an error if the graph is invalid or a pass fails.
pub fn compile(graph: &Graph, target: &CpuTarget, opts: &CompileOptions) -> Result<Module> {
    let mut db = SchemeDatabase::new();
    compile_with_db(graph, target, opts, &mut db)
}

/// Compiles `graph` for `target`, reading/writing local-search results in
/// `db` (§3.3.1's cross-model workload cache).
///
/// # Errors
///
/// Returns an error if the graph is invalid or a pass fails.
pub fn compile_with_db(
    graph: &Graph,
    target: &CpuTarget,
    opts: &CompileOptions,
    db: &mut SchemeDatabase,
) -> Result<Module> {
    compile_with_report(graph, target, opts, db).map(|(m, _)| m)
}

/// Compiles `graph` like [`compile_with_db`], additionally returning the
/// [`CompileReport`] of dropped database entries and schedule fallbacks.
///
/// # Errors
///
/// Returns an error if the graph is invalid, a pass fails, or the final
/// module fails verification. A bad *database entry* is not an error — it
/// is dropped, reported, and compilation degrades gracefully.
pub fn compile_with_report(
    graph: &Graph,
    target: &CpuTarget,
    opts: &CompileOptions,
    db: &mut SchemeDatabase,
) -> Result<(Module, CompileReport)> {
    let mut report = CompileReport::default();
    let planned = plan_stage(graph, target, opts, db, &mut report, false)?;
    let module = finish_module(&planned, target, opts, &mut report)?;
    Ok((module, report))
}

/// Runs the front half of the pipeline — simplify, fuse, schedule search,
/// layout planning — and returns the planned graph with weights still in
/// their plain `OIHW` form. With `int8` set, each conv's candidate list is
/// additionally searched under the int8 cost model (see
/// [`global_search`]); the quantization pass consumes the result.
pub(crate) fn plan_stage(
    graph: &Graph,
    target: &CpuTarget,
    opts: &CompileOptions,
    db: &mut SchemeDatabase,
    report: &mut CompileReport,
    int8: bool,
) -> Result<Graph> {
    let simplified = simplify_inference(graph)?;
    let fused = if opts.fuse { fuse_ops(&simplified)? } else { simplified };

    let cfg = UniformPlanCfg {
        block: target.preferred_block(),
        reg_n: default_reg_n(target),
        unroll: true,
    };
    let planned = match opts.opt_level {
        OptLevel::O0 => fused,
        OptLevel::O1 => wrap_convs_with_transforms(&fused, &cfg)?,
        OptLevel::O2 => plan_uniform(&fused, &cfg)?,
        OptLevel::O3 => {
            let mut schedules = global_search(&fused, target, opts, db, report, int8)?;
            // Backstop: nothing unverified may reach layout planning, even
            // if the solver hands back a schedule outside the candidate set.
            for (&id, s) in schedules.iter_mut() {
                let Op::Conv2d { params, .. } = &fused.nodes[id].op else { continue };
                if let Err(reason) = verify_schedule_for_target(params, s, target) {
                    let fb = default_schedule(params, target);
                    report.fallbacks.push(ScheduleFallback {
                        node: id,
                        params: *params,
                        fallback: fb,
                        reason,
                    });
                    *s = fb;
                }
            }
            plan_assigned(&fused, &schedules, &cfg)?
        }
    };
    Ok(planned)
}

/// Runs the back half of the pipeline on a planned graph: weight
/// pre-transformation, shape/layout/dtype inference, module verification,
/// and executable module construction.
pub(crate) fn finish_module(
    planned: &Graph,
    target: &CpuTarget,
    opts: &CompileOptions,
    report: &mut CompileReport,
) -> Result<Module> {
    let pre = precompute_weights(planned)?;
    let shapes = infer_shapes(&pre)?;
    let layouts = infer_layouts(&pre, &shapes)?;
    verify_module(&pre, &shapes, &layouts, target)?;
    let pool = make_pool(opts);
    let module = Module::new(pre, shapes, layouts, pool, target.max_lanes())?;
    report.memory = *module.memory_report();
    Ok(module)
}

/// Compiles `graph` with a caller-supplied thread pool (used by the
/// benchmark harness to instrument parallel regions); `opts.pool` and
/// `opts.threads` are ignored.
///
/// # Errors
///
/// Returns an error if the graph is invalid or a pass fails.
pub fn compile_with_pool(
    graph: &Graph,
    target: &CpuTarget,
    opts: &CompileOptions,
    pool: Arc<dyn Parallelism>,
    db: &mut SchemeDatabase,
) -> Result<Module> {
    let module = compile_with_db(graph, target, opts, db)?;
    Ok(module.with_pool(pool))
}

/// Loads a scheme database, converting I/O and parse failures into typed
/// [`NeoError::Database`] errors (strict: the first bad line fails the
/// load).
///
/// # Errors
///
/// Returns an error if the file cannot be read or any line is malformed.
pub fn load_scheme_db(path: &Path) -> Result<SchemeDatabase> {
    crate::faults::fire(crate::faults::DB_LOAD)?;
    SchemeDatabase::load(path).map_err(|e| NeoError::Database(e.to_string()))
}

/// Loads a scheme database leniently: corrupt or invalid lines are skipped
/// and returned as line-numbered diagnostics alongside the surviving
/// entries — the serving-process path, where a damaged cache must degrade
/// rather than block startup.
///
/// # Errors
///
/// Returns an error only if the file cannot be read at all.
pub fn load_scheme_db_lenient(path: &Path) -> Result<(SchemeDatabase, Vec<String>)> {
    crate::faults::fire(crate::faults::DB_LOAD)?;
    let (db, problems) =
        SchemeDatabase::load_lenient(path).map_err(|e| NeoError::Database(e.to_string()))?;
    Ok((db, problems.iter().map(ToString::to_string).collect()))
}

/// Prices candidate schedules with the int8 kernel cost — the dtype axis
/// of the search. Same candidate space, same transform costs; only the
/// conv time changes. Wrapping (rather than a second trait method on the
/// search side) lets [`local_search`] stay dtype-agnostic.
struct Int8Cost<'a, M: CostModel>(&'a M);

impl<M: CostModel> CostModel for Int8Cost<'_, M> {
    fn conv_time(&self, params: &Conv2dParams, schedule: &ConvSchedule) -> f32 {
        self.0.conv_time_i8(params, schedule)
    }
    fn transform_time(&self, c: usize, h: usize, w: usize, from: usize, to: usize) -> f32 {
        self.0.transform_time(c, h, w, from, to)
    }
}

/// Runs the two-stage search and returns per-conv schedules.
///
/// Cached database entries are verified for the current target first;
/// failures are dropped into `report` (the database may have been loaded
/// from a stale or corrupt file, or recorded for a different machine).
/// Freshly searched candidates pass through the same filter silently —
/// pruning target-infeasible points of the generic candidate space is part
/// of the search, not a fault. A workload left without any viable scheme
/// degrades to a synthesized conservative default.
///
/// With `int8` set, every conv workload is *additionally* searched under
/// the int8 cost model (always analytical — [`TimedMeasurer`] only runs
/// the f32 kernel and its [`CostModel::conv_time_i8`] default reports no
/// speedup). Int8 candidate lists are cached in `db` under the `d`-suffixed
/// dtype key, and when a workload's best int8 candidate beats its best f32
/// candidate, the int8 list is what enters the global solve — the chosen
/// schedule is then the one the quantization pass will run, not the one
/// the f32 kernel would prefer.
fn global_search(
    g: &Graph,
    target: &CpuTarget,
    opts: &CompileOptions,
    db: &mut SchemeDatabase,
    report: &mut CompileReport,
    int8: bool,
) -> Result<HashMap<NodeId, ConvSchedule>> {
    let analytical = target.analytical_model();
    let local_cfg = match opts.search {
        SearchStrategy::Analytical => {
            LocalSearchCfg { preselect: None, keep: opts.keep_candidates, ..Default::default() }
        }
        SearchStrategy::Timed { .. } => {
            LocalSearchCfg { preselect: None, keep: opts.keep_candidates, ..Default::default() }
        }
        SearchStrategy::Hybrid { preselect, .. } => LocalSearchCfg {
            preselect: Some(preselect),
            keep: opts.keep_candidates,
            ..Default::default()
        },
    };
    let timed = match opts.search {
        SearchStrategy::Analytical => None,
        SearchStrategy::Timed { repeats } | SearchStrategy::Hybrid { repeats, .. } => {
            Some(TimedMeasurer { repeats, warmup: 1, max_lanes: target.max_lanes() })
        }
    };
    let tname = target.name.clone();
    let mut ranked = |node: NodeId, params: &Conv2dParams| -> Vec<RankedScheme> {
        let mut kept: Vec<RankedScheme> = match db.get(&tname, params) {
            Some(cached) => cached
                .iter()
                .cloned()
                .filter(|r| match verify_ranked_for_target(params, r, target) {
                    Ok(()) => true,
                    Err(reason) => {
                        report.dropped_schemes.push(DroppedScheme {
                            node,
                            params: *params,
                            schedule: r.schedule,
                            reason,
                        });
                        false
                    }
                })
                .collect(),
            None => {
                let fresh = match &timed {
                    Some(t) => local_search(params, t, &local_cfg),
                    None => local_search(params, &analytical, &local_cfg),
                };
                fresh
                    .into_iter()
                    .filter(|r| verify_ranked_for_target(params, r, target).is_ok())
                    .collect()
            }
        };
        if kept.is_empty() {
            let fb = default_schedule(params, target);
            report.fallbacks.push(ScheduleFallback {
                node,
                params: *params,
                fallback: fb,
                reason: "no scheme survived target verification".into(),
            });
            let t = analytical.conv_time(params, &fb);
            let time = if t.is_finite() && t >= 0.0 { t } else { 1.0 };
            kept.push(RankedScheme { schedule: fb, time });
        }
        // The database ends up holding only verified entries for this
        // target — dropped schemes never resurface on the next compile.
        // `replace` (not the merging `put`) is load-bearing here: merging
        // would resurrect the very entries verification just rejected.
        db.replace(&tname, params, kept.clone());
        if int8 {
            let kept8: Vec<RankedScheme> = match db.get_dtyped(&tname, params, DType::U8) {
                Some(cached) => cached
                    .iter()
                    .cloned()
                    .filter(|r| match verify_ranked_for_target(params, r, target) {
                        Ok(()) => true,
                        Err(reason) => {
                            report.dropped_schemes.push(DroppedScheme {
                                node,
                                params: *params,
                                schedule: r.schedule,
                                reason,
                            });
                            false
                        }
                    })
                    .collect(),
                None => local_search(params, &Int8Cost(&analytical), &local_cfg)
                    .into_iter()
                    .filter(|r| verify_ranked_for_target(params, r, target).is_ok())
                    .collect(),
            };
            db.replace_dtyped(&tname, params, DType::U8, kept8.clone());
            // No fallback synthesis on the int8 side: a workload with no
            // finite int8 candidate (e.g. a 3-channel stem that cannot
            // quad-pack) simply stays on its f32 list.
            if let (Some(b8), Some(bf)) = (kept8.first(), kept.first()) {
                if b8.time < bf.time {
                    return kept8;
                }
            }
        }
        kept
    };
    let problem = extract_problem(g, &mut ranked, &analytical)?;
    let (assignment, _obj) = solve(&problem, &GlobalCfg::default());
    Ok(problem.assignment_to_schedules(&assignment))
}

/// A conservative schedule for `params` that always verifies on `target`:
/// the largest channel factors within the preferred block, the target's
/// default register blocking capped by the output width.
fn default_schedule(params: &Conv2dParams, target: &CpuTarget) -> ConvSchedule {
    let block = target.preferred_block();
    let oc_bn = factors_descending(params.out_channels, block).first().copied().unwrap_or(1);
    // Depthwise kernels convolve one channel block at a time, so the
    // activation and filter blockings must agree (in == out channels makes
    // `oc_bn` always a valid choice).
    let ic_bn = if params.groups > 1 {
        oc_bn
    } else {
        factors_descending(params.in_channels, block).first().copied().unwrap_or(1)
    };
    let reg_n = default_reg_n(target).min(params.out_w().max(1)).clamp(1, 28);
    ConvSchedule { ic_bn, oc_bn, reg_n, unroll_ker: true, ..Default::default() }
}

/// Checks a ranked database entry against the workload and target:
/// schedule divisibility, register pressure, and a sane cost value.
fn verify_ranked_for_target(
    params: &Conv2dParams,
    ranked: &RankedScheme,
    target: &CpuTarget,
) -> std::result::Result<(), String> {
    verify_schedule_for_target(params, &ranked.schedule, target)?;
    if !ranked.time.is_finite() || ranked.time < 0.0 {
        return Err(format!("recorded time {} is not a sane cost", ranked.time));
    }
    Ok(())
}

/// Checks a schedule against its workload (Algorithm 1 divisibility) and
/// the target's register file.
///
/// The register rule: when `oc_bn` is a (positive) multiple of the SIMD
/// width, the vector microkernel holds `reg_n × (oc_bn / lanes)`
/// accumulator tiles live — plus, in the single-row case where a dedicated
/// strip kernel dispatches, the dataflow's resident vectors (kernel vector
/// and broadcast for output-stationary; `kernel_w` kernel vectors for
/// weight-stationary/shift-reuse) — which must all fit the architectural
/// register file. Narrower `oc_bn` runs the scalar path and carries no
/// such constraint.
fn verify_schedule_for_target(
    params: &Conv2dParams,
    s: &ConvSchedule,
    target: &CpuTarget,
) -> std::result::Result<(), String> {
    s.validate(params).map_err(|e| e.to_string())?;
    let lanes = target.max_lanes();
    if lanes > 1 && s.oc_bn >= lanes && s.oc_bn.is_multiple_of(lanes) {
        let rows = s.oc_bn / lanes;
        let resident = if rows == 1 { s.dataflow.resident_regs(params.kernel_w) } else { 0 };
        let regs = s.reg_n * rows + resident;
        let budget = target.isa.vector_registers();
        if regs > budget {
            return Err(format!(
                "schedule needs {regs} vector registers (reg_n {} × {rows} vector row(s) \
                 of oc_bn {} + {resident} resident) but {:?} has only {budget}",
                s.reg_n, s.oc_bn, target.isa
            ));
        }
    }
    Ok(())
}

/// Verifies every node of the final compiled graph before it can execute:
/// topological inputs, arity, parameter-index bounds, shape/layout
/// agreement, conv schedule validity for the target, and layout flow
/// around convs and explicit transforms.
///
/// This is the hard backstop behind graceful degradation — anything that
/// slipped past the pass pipeline surfaces here as [`NeoError::Verify`]
/// instead of reaching kernel code.
fn verify_module(
    g: &Graph,
    shapes: &[Shape],
    layouts: &[Layout],
    target: &CpuTarget,
) -> Result<()> {
    let fail = |node: usize, op: &'static str, message: String| {
        Err(NeoError::Verify { node, op, message })
    };
    if shapes.len() != g.len() || layouts.len() != g.len() {
        return Err(NeoError::Internal(format!(
            "shape/layout tables cover {}/{} nodes of a {}-node graph",
            shapes.len(),
            layouts.len(),
            g.len()
        )));
    }
    for (id, node) in g.nodes.iter().enumerate() {
        let op = node.op.name();
        for &inp in &node.inputs {
            if inp >= id {
                return fail(id, op, format!("input {inp} is not topologically earlier"));
            }
        }
        match node.op.arity() {
            Some(want) if node.inputs.len() != want => {
                return fail(
                    id,
                    op,
                    format!("expects {want} input(s), has {}", node.inputs.len()),
                );
            }
            None if node.inputs.len() < 2 => {
                return fail(id, op, format!("expects ≥ 2 inputs, has {}", node.inputs.len()));
            }
            _ => {}
        }
        for p in node.op.param_ids() {
            if p >= g.params.len() {
                return fail(
                    id,
                    op,
                    format!("parameter index {p} out of bounds ({} stored)", g.params.len()),
                );
            }
        }
        if let Err(e) = layouts[id].physical_dims(&shapes[id]) {
            return fail(
                id,
                op,
                format!("layout {} disagrees with shape {}: {e}", layouts[id], shapes[id]),
            );
        }
        match &node.op {
            Op::Conv2d { params, schedule, residual, .. } => {
                let in_dims = shapes[node.inputs[0]].dims();
                let want_in =
                    [in_dims.first().copied().unwrap_or(0), params.in_channels, params.in_h, params.in_w];
                if in_dims.len() != 4 || in_dims[1..] != want_in[1..] {
                    return fail(
                        id,
                        op,
                        format!("input shape {} does not match workload {params:?}", shapes[node.inputs[0]]),
                    );
                }
                let out_dims = shapes[id].dims();
                let want_out = [want_in[0], params.out_channels, params.out_h(), params.out_w()];
                if out_dims != want_out {
                    return fail(
                        id,
                        op,
                        format!("output shape {} does not match workload {params:?}", shapes[id]),
                    );
                }
                match schedule {
                    Some(s) => {
                        if let Err(m) = verify_schedule_for_target(params, s, target) {
                            return fail(id, op, m);
                        }
                        if layouts[node.inputs[0]] != Layout::NchwC(s.ic_bn) {
                            return fail(
                                id,
                                op,
                                format!(
                                    "scheduled conv needs NCHW{}c input, got {}",
                                    s.ic_bn,
                                    layouts[node.inputs[0]]
                                ),
                            );
                        }
                        if layouts[id] != Layout::NchwC(s.oc_bn) {
                            return fail(
                                id,
                                op,
                                format!(
                                    "scheduled conv must emit NCHW{}c, got {}",
                                    s.oc_bn, layouts[id]
                                ),
                            );
                        }
                        if *residual && layouts[node.inputs[1]] != layouts[id] {
                            return fail(
                                id,
                                op,
                                format!(
                                    "residual input layout {} must match output {}",
                                    layouts[node.inputs[1]],
                                    layouts[id]
                                ),
                            );
                        }
                    }
                    None => {
                        if layouts[node.inputs[0]] != Layout::Nchw
                            || layouts[id] != Layout::Nchw
                        {
                            return fail(
                                id,
                                op,
                                format!(
                                    "unscheduled conv runs in NCHW, got {} → {}",
                                    layouts[node.inputs[0]],
                                    layouts[id]
                                ),
                            );
                        }
                    }
                }
            }
            Op::LayoutTransform { to } if layouts[id] != *to => {
                return fail(
                    id,
                    op,
                    format!("declares target layout {to} but was assigned {}", layouts[id]),
                );
            }
            _ => {}
        }
    }
    for &o in &g.outputs {
        if o >= g.len() {
            return fail(o, "output", format!("output id {o} out of bounds"));
        }
    }
    Ok(())
}

fn default_reg_n(target: &CpuTarget) -> usize {
    match target.isa {
        crate::IsaKind::Avx512 => 16,
        crate::IsaKind::Avx2 => 8,
        crate::IsaKind::Neon => 8,
        crate::IsaKind::Generic => 4,
    }
}

fn make_pool(opts: &CompileOptions) -> Arc<dyn Parallelism> {
    match (opts.pool, opts.threads) {
        (PoolChoice::Sequential, _) | (_, 0 | 1) => Arc::new(Sequential),
        (PoolChoice::Custom, n) => Arc::new(ThreadPool::new(n)),
        (PoolChoice::OmpLike, n) => Arc::new(OmpLikePool::new(n)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neocpu_graph::GraphBuilder;
    use neocpu_tensor::{Layout, Tensor};

    fn small_net() -> Graph {
        let mut b = GraphBuilder::new(5);
        let x = b.input([1, 8, 12, 12]);
        let c1 = b.conv_bn_relu(x, 16, 3, 1, 1);
        let p = b.max_pool(c1, 2, 2, 0);
        let c2 = b.conv_bn_relu(p, 16, 3, 1, 1);
        let f = b.flatten(c2);
        let d = b.dense(f, 4);
        let s = b.softmax(d);
        b.finish(vec![s])
    }

    #[test]
    fn all_levels_compile_and_agree() {
        let g = small_net();
        let target = CpuTarget::host();
        let input = Tensor::random([1, 8, 12, 12], Layout::Nchw, 3, 1.0).unwrap();
        let mut outputs = Vec::new();
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            let m = compile(&g, &target, &CompileOptions::level(level)).unwrap();
            let out = m.run(std::slice::from_ref(&input)).unwrap();
            outputs.push(out.into_iter().next().unwrap());
        }
        for o in &outputs[1..] {
            assert!(
                outputs[0].approx_eq(o, 1e-4),
                "optimization changed semantics: diff {}",
                outputs[0].max_abs_diff(o)
            );
        }
    }

    #[test]
    fn depthwise_separable_net_agrees_across_levels() {
        // A MobileNet-style separable block: dw 3x3 + pw 1x1, twice.
        let mut b = GraphBuilder::new(31);
        let x = b.input([1, 8, 12, 12]);
        let d1 = b.dw_conv_bn_relu(x, 3, 1, 1);
        let p1 = b.conv_bn_relu(d1, 16, 1, 1, 0);
        let d2 = b.dw_conv_bn_relu(p1, 3, 2, 1);
        let p2 = b.conv_bn_relu(d2, 16, 1, 1, 0);
        let g = b.finish(vec![p2]);
        let target = CpuTarget::host();
        let input = Tensor::random([1, 8, 12, 12], Layout::Nchw, 37, 1.0).unwrap();
        let base = compile(&g, &target, &CompileOptions::level(OptLevel::O0))
            .unwrap()
            .run(std::slice::from_ref(&input))
            .unwrap();
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            let m = compile(&g, &target, &CompileOptions::level(level)).unwrap();
            let out = m.run(std::slice::from_ref(&input)).unwrap();
            assert!(
                base[0].approx_eq(&out[0], 1e-4),
                "{level:?} diverged on depthwise net: {}",
                base[0].max_abs_diff(&out[0])
            );
        }
    }

    #[test]
    fn transform_counts_fall_along_the_ladder() {
        let g = small_net();
        let target = CpuTarget::host();
        let o1 = compile(&g, &target, &CompileOptions::level(OptLevel::O1)).unwrap();
        let o2 = compile(&g, &target, &CompileOptions::level(OptLevel::O2)).unwrap();
        assert!(o2.transform_count() < o1.transform_count());
        assert_eq!(o1.transform_count(), 4); // 2 convs × (in + out)
        assert_eq!(o2.transform_count(), 2); // entry + exit only
    }

    #[test]
    fn o3_reuses_database_entries() {
        let g = small_net();
        let target = CpuTarget::host();
        let mut db = SchemeDatabase::new();
        let opts = CompileOptions::level(OptLevel::O3);
        let _ = compile_with_db(&g, &target, &opts, &mut db).unwrap();
        let n = db.len();
        assert!(n >= 1);
        // Second compile hits the cache; the count is unchanged.
        let _ = compile_with_db(&g, &target, &opts, &mut db).unwrap();
        assert_eq!(db.len(), n);
    }

    #[test]
    fn narrower_target_still_correct() {
        let g = small_net();
        let input = Tensor::random([1, 8, 12, 12], Layout::Nchw, 4, 1.0).unwrap();
        let host = compile(&g, &CpuTarget::host(), &CompileOptions::level(OptLevel::O2)).unwrap();
        let neon =
            compile(&g, &CpuTarget::arm_a72_neon(), &CompileOptions::level(OptLevel::O2))
                .unwrap();
        let a = host.run(std::slice::from_ref(&input)).unwrap();
        let b = neon.run(std::slice::from_ref(&input)).unwrap();
        assert!(a[0].approx_eq(&b[0], 1e-4));
    }

    #[test]
    fn multithreaded_module_matches_sequential() {
        let g = small_net();
        let target = CpuTarget::host();
        let input = Tensor::random([1, 8, 12, 12], Layout::Nchw, 5, 1.0).unwrap();
        let seq = compile(&g, &target, &CompileOptions::level(OptLevel::O2)).unwrap();
        let par = compile(
            &g,
            &target,
            &CompileOptions::level(OptLevel::O2).with_threads(4),
        )
        .unwrap();
        let omp = compile(
            &g,
            &target,
            &CompileOptions::level(OptLevel::O2)
                .with_threads(4)
                .with_pool(PoolChoice::OmpLike),
        )
        .unwrap();
        let a = seq.run(std::slice::from_ref(&input)).unwrap();
        let b = par.run(std::slice::from_ref(&input)).unwrap();
        let c = omp.run(std::slice::from_ref(&input)).unwrap();
        assert!(a[0].approx_eq(&b[0], 1e-5));
        assert!(a[0].approx_eq(&c[0], 1e-5));
    }

    #[test]
    fn clean_compile_has_clean_report() {
        let g = small_net();
        let target = CpuTarget::host();
        let mut db = SchemeDatabase::new();
        let (m, report) =
            compile_with_report(&g, &target, &CompileOptions::level(OptLevel::O3), &mut db)
                .unwrap();
        assert!(report.is_clean(), "unexpected degradation: {report:?}");
        let input = Tensor::random([1, 8, 12, 12], Layout::Nchw, 6, 1.0).unwrap();
        m.run(&[input]).unwrap();
    }

    #[test]
    fn invalid_db_entry_degrades_with_report() {
        let g = small_net();
        let target = CpuTarget::skylake_avx512();
        let mut db = SchemeDatabase::new();
        // The exact workload of the first conv of `small_net`, poisoned
        // with a schedule whose ic_bn does not divide in_channels.
        let w1 = Conv2dParams::square(8, 16, 12, 3, 1, 1);
        db.put(
            &target.name,
            &w1,
            vec![RankedScheme {
                schedule: ConvSchedule { ic_bn: 5, oc_bn: 16, reg_n: 8, unroll_ker: true, ..Default::default() },
                time: 1e-4,
            }],
        );
        let (m, report) =
            compile_with_report(&g, &target, &CompileOptions::level(OptLevel::O3), &mut db)
                .unwrap();
        assert_eq!(report.dropped_schemes.len(), 1);
        assert!(report.dropped_schemes[0].reason.contains("ic_bn"));
        assert_eq!(report.fallbacks.len(), 1);
        assert_eq!(report.fallbacks[0].params, w1);
        // The module still runs, and matches the unoptimized baseline.
        let input = Tensor::random([1, 8, 12, 12], Layout::Nchw, 8, 1.0).unwrap();
        let out = m.run(std::slice::from_ref(&input)).unwrap();
        let base = compile(&g, &target, &CompileOptions::level(OptLevel::O0))
            .unwrap()
            .run(std::slice::from_ref(&input))
            .unwrap();
        assert!(base[0].approx_eq(&out[0], 1e-4));
        // The poisoned entry was purged: a recompile is clean.
        let (_, report2) =
            compile_with_report(&g, &target, &CompileOptions::level(OptLevel::O3), &mut db)
                .unwrap();
        assert!(report2.is_clean(), "poison resurfaced: {report2:?}");
    }

    #[test]
    fn nan_cost_entry_is_dropped() {
        let g = small_net();
        let target = CpuTarget::skylake_avx512();
        let mut db = SchemeDatabase::new();
        let w1 = Conv2dParams::square(8, 16, 12, 3, 1, 1);
        db.put(
            &target.name,
            &w1,
            vec![RankedScheme {
                schedule: ConvSchedule { ic_bn: 8, oc_bn: 16, reg_n: 8, unroll_ker: true, ..Default::default() },
                time: f32::NAN,
            }],
        );
        let (_, report) =
            compile_with_report(&g, &target, &CompileOptions::level(OptLevel::O3), &mut db)
                .unwrap();
        assert_eq!(report.dropped_schemes.len(), 1);
        assert!(report.dropped_schemes[0].reason.contains("sane cost"));
    }

    #[test]
    fn register_pressure_rule_rejects_oversized_tiles() {
        let target = CpuTarget::epyc_avx2();
        let p = Conv2dParams::square(8, 8, 28, 3, 1, 1);
        // 28 × (8/8) = 28 accumulators > 16 AVX2 registers.
        let bad = ConvSchedule { ic_bn: 8, oc_bn: 8, reg_n: 28, unroll_ker: true, ..Default::default() };
        assert!(verify_schedule_for_target(&p, &bad, &target).is_err());
        // Within budget.
        let ok = ConvSchedule { ic_bn: 8, oc_bn: 8, reg_n: 8, unroll_ker: true, ..Default::default() };
        assert!(verify_schedule_for_target(&p, &ok, &target).is_ok());
        // Scalar path (oc_bn below the vector width) has no register rule.
        let scalar = ConvSchedule { ic_bn: 8, oc_bn: 4, reg_n: 28, unroll_ker: false, ..Default::default() };
        assert!(verify_schedule_for_target(&p, &scalar, &target).is_ok());
    }

    #[test]
    fn default_schedule_always_verifies() {
        for target in [
            CpuTarget::skylake_avx512(),
            CpuTarget::epyc_avx2(),
            CpuTarget::arm_a72_neon(),
            CpuTarget::host(),
        ] {
            for (ic, oc, size) in [(3, 64, 224), (8, 16, 12), (7, 13, 5), (1, 1, 1)] {
                let p = Conv2dParams::square(ic, oc, size, 3, 1, 1);
                let s = default_schedule(&p, &target);
                verify_schedule_for_target(&p, &s, &target)
                    .unwrap_or_else(|e| panic!("{target:?} {p:?}: {e}"));
            }
            for channels in [3, 7, 32, 144] {
                let p = Conv2dParams::depthwise(channels, 14, 3, 1, 1);
                let s = default_schedule(&p, &target);
                assert_eq!(s.ic_bn, s.oc_bn, "{target:?} depthwise blocks diverge");
                verify_schedule_for_target(&p, &s, &target)
                    .unwrap_or_else(|e| panic!("{target:?} {p:?}: {e}"));
            }
        }
    }

    #[test]
    fn verifier_rejects_mangled_schedule() {
        let g = small_net();
        let target = CpuTarget::host();
        let cfg = UniformPlanCfg {
            block: target.preferred_block(),
            reg_n: default_reg_n(&target),
            unroll: true,
        };
        let fused = fuse_ops(&simplify_inference(&g).unwrap()).unwrap();
        let mut planned = plan_uniform(&fused, &cfg).unwrap();
        let shapes = infer_shapes(&planned).unwrap();
        let layouts = infer_layouts(&planned, &shapes).unwrap();
        verify_module(&planned, &shapes, &layouts, &target).unwrap();
        // Mangle one conv's schedule after planning (reg_n = 0 is invalid
        // for every workload); the verifier must catch it.
        let id = planned.conv_ids()[0];
        let Op::Conv2d { schedule, .. } = &mut planned.nodes[id].op else { unreachable!() };
        let mut s = schedule.unwrap();
        s.reg_n = 0;
        *schedule = Some(s);
        let err = verify_module(&planned, &shapes, &layouts, &target).unwrap_err();
        assert!(
            matches!(err, NeoError::Verify { node, op: "conv2d", .. } if node == id),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn verifier_rejects_out_of_bounds_param() {
        let g = small_net();
        let target = CpuTarget::host();
        let fused = fuse_ops(&simplify_inference(&g).unwrap()).unwrap();
        let mut planned = plan_uniform(
            &fused,
            &UniformPlanCfg {
                block: target.preferred_block(),
                reg_n: default_reg_n(&target),
                unroll: true,
            },
        )
        .unwrap();
        let shapes = infer_shapes(&planned).unwrap();
        let layouts = infer_layouts(&planned, &shapes).unwrap();
        let id = planned.conv_ids()[0];
        let Op::Conv2d { weight, .. } = &mut planned.nodes[id].op else { unreachable!() };
        *weight = 10_000;
        let err = verify_module(&planned, &shapes, &layouts, &target).unwrap_err();
        assert!(matches!(err, NeoError::Verify { .. }), "unexpected error: {err}");
        assert!(err.to_string().contains("parameter index"));
    }

    #[test]
    fn db_load_helpers_map_errors() {
        let dir = std::env::temp_dir().join("neocpu-compile-dbload");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("does-not-exist.tsv");
        assert!(matches!(load_scheme_db(&missing), Err(NeoError::Database(_))));
        let corrupt = dir.join("corrupt.tsv");
        std::fs::write(&corrupt, "neocpu-scheme-db v1\nnot a valid line\n").unwrap();
        assert!(matches!(load_scheme_db(&corrupt), Err(NeoError::Database(_))));
        let (db, problems) = load_scheme_db_lenient(&corrupt).unwrap();
        assert_eq!(db.len(), 0);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("line 2"), "missing line number: {}", problems[0]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
