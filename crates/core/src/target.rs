//! CPU target descriptors.
//!
//! The paper evaluates on three machines: an 18-core Intel Skylake with
//! AVX-512, a 24-core AMD EPYC with AVX2, and a 16-core ARM Cortex-A72 with
//! NEON. A [`CpuTarget`] captures the parameters the template and the
//! search need — vector width, core count, cache sizes — so the same stack
//! can be *parameterized* for each machine. On this reproduction's host the
//! AVX-512 and AVX2 microkernels execute for real; narrower targets (NEON)
//! are modeled by capping the SIMD lanes, which preserves the schedule
//! space shape even though the host ISA differs (see DESIGN.md).

use neocpu_search::AnalyticalModel;

/// Vector instruction family of a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaKind {
    /// 512-bit AVX-512F (16 f32 lanes, 32 vector registers).
    Avx512,
    /// 256-bit AVX2+FMA (8 f32 lanes, 16 vector registers).
    Avx2,
    /// 128-bit NEON-class (4 f32 lanes, 32 vector registers).
    Neon,
    /// No SIMD assumption; scalar microkernel.
    Generic,
}

impl IsaKind {
    /// f32 lanes per vector.
    pub fn lanes(&self) -> usize {
        match self {
            Self::Avx512 => 16,
            Self::Avx2 => 8,
            Self::Neon => 4,
            Self::Generic => 1,
        }
    }

    /// Architectural vector registers available to a microkernel — the
    /// budget the schedule verifier checks `reg_n × (oc_bn / lanes)`
    /// accumulator tiles against.
    pub fn vector_registers(&self) -> usize {
        match self {
            Self::Avx512 => 32,
            Self::Avx2 => 16,
            Self::Neon => 32,
            Self::Generic => 16,
        }
    }
}

/// A CPU target description.
#[derive(Debug, Clone)]
pub struct CpuTarget {
    /// Stable name (keys the scheme database).
    pub name: String,
    /// Vector ISA.
    pub isa: IsaKind,
    /// Physical cores (the paper uses one thread per physical core, no
    /// hyper-threading).
    pub cores: usize,
    /// L1 data cache per core, bytes.
    pub l1d: usize,
    /// L2 cache per core, bytes.
    pub l2: usize,
    /// Peak per-core FMA throughput (MACs/s) for the analytical model.
    pub macs_per_sec: f32,
    /// Effective memory bandwidth (bytes/s) for transform-cost estimates.
    pub mem_bytes_per_sec: f32,
}

impl CpuTarget {
    /// The paper's C5.9xlarge: 18-core Intel Skylake, AVX-512.
    pub fn skylake_avx512() -> Self {
        Self {
            name: "skylake-avx512".into(),
            isa: IsaKind::Avx512,
            cores: 18,
            l1d: 32 * 1024,
            l2: 1024 * 1024,
            macs_per_sec: 9.6e10, // 2 FMA ports × 16 lanes × ~3 GHz
            mem_bytes_per_sec: 2.0e10,
        }
    }

    /// The paper's M5a.12xlarge: 24-core AMD EPYC, AVX2.
    pub fn epyc_avx2() -> Self {
        Self {
            name: "epyc-avx2".into(),
            isa: IsaKind::Avx2,
            cores: 24,
            l1d: 32 * 1024,
            l2: 512 * 1024,
            macs_per_sec: 2.4e10, // 1 FMA port × 8 lanes × ~3 GHz
            mem_bytes_per_sec: 1.5e10,
        }
    }

    /// The paper's A1.4xlarge: 16-core ARM Cortex-A72, NEON.
    pub fn arm_a72_neon() -> Self {
        Self {
            name: "arm-a72-neon".into(),
            isa: IsaKind::Neon,
            cores: 16,
            l1d: 32 * 1024,
            l2: 512 * 1024,
            macs_per_sec: 9.2e9, // 4 lanes × ~2.3 GHz
            mem_bytes_per_sec: 1.0e10,
        }
    }

    /// Describes the machine this process runs on (detected features).
    pub fn host() -> Self {
        let isa = host_isa();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self {
            name: format!("host-{}", format!("{isa:?}").to_lowercase()),
            isa,
            cores,
            l1d: 32 * 1024,
            l2: 1024 * 1024,
            macs_per_sec: 4.8e10,
            mem_bytes_per_sec: 2.0e10,
        }
    }

    /// Preferred channel block (`x` in `NCHW[x]c`): the vector width.
    pub fn preferred_block(&self) -> usize {
        self.isa.lanes().max(4)
    }

    /// SIMD-lane cap handed to the kernels (narrower targets than the host
    /// run the portable microkernel).
    pub fn max_lanes(&self) -> usize {
        match self.isa {
            IsaKind::Generic => 1,
            isa => isa.lanes(),
        }
    }

    /// The analytical cost model parameterized for this target.
    pub fn analytical_model(&self) -> AnalyticalModel {
        AnalyticalModel {
            vec_lanes: self.isa.lanes(),
            macs_per_sec: self.macs_per_sec,
            mem_bytes_per_sec: self.mem_bytes_per_sec,
            l1_bytes: self.l1d,
            vector_registers: self.isa.vector_registers(),
        }
    }
}

fn host_isa() -> IsaKind {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return IsaKind::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return IsaKind::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return IsaKind::Neon;
    }
    #[allow(unreachable_code)]
    IsaKind::Generic
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_machines() {
        assert_eq!(CpuTarget::skylake_avx512().cores, 18);
        assert_eq!(CpuTarget::skylake_avx512().isa.lanes(), 16);
        assert_eq!(CpuTarget::epyc_avx2().cores, 24);
        assert_eq!(CpuTarget::epyc_avx2().isa.lanes(), 8);
        assert_eq!(CpuTarget::arm_a72_neon().cores, 16);
        assert_eq!(CpuTarget::arm_a72_neon().isa.lanes(), 4);
    }

    #[test]
    fn host_target_is_consistent() {
        let t = CpuTarget::host();
        assert!(t.cores >= 1);
        assert!(t.preferred_block() >= 4);
        assert!(t.max_lanes() >= 1);
    }

    #[test]
    fn analytical_model_inherits_lanes() {
        let m = CpuTarget::epyc_avx2().analytical_model();
        assert_eq!(m.vec_lanes, 8);
    }
}
