//! Throughput-serving engine: concurrent, batched inference over pooled
//! [`RunContext`]s, with a full request-lifecycle layer — deadlines, load
//! shedding, a worker watchdog, and budgeted graceful drain.
//!
//! [`Module::run`] serves one request at a time; nothing in the stack
//! drives the zero-allocation context machinery concurrently or at
//! batch > 1. This module closes that gap with a classic serving front end
//! layered on the arena executor:
//!
//! ```text
//!  clients ──submit──▶ bounded queue ──▶ dynamic batcher ──▶ workers
//!  (N threads)         (Mutex+Condvar,    (coalesce up to     (1 RunContext
//!   try_submit sheds    backpressure)      B or timeout,       each, affine,
//!   instead of block)                      skips expired)      watchdog-kept)
//! ```
//!
//! * Every worker owns a pre-built [`RunContext`] plus a staging input
//!   tensor, both allocated once at engine start — a warm request costs
//!   **zero heap allocations** end to end: submit pushes an `Arc` clone
//!   into a pre-reserved `VecDeque`, the worker memcpys request rows into
//!   its staging tensor, runs [`Module::run_with`] (allocation-free by the
//!   executor's contract), and memcpys each output row back into the
//!   request's pre-allocated buffers.
//! * The **dynamic batcher** coalesces queued requests into one batched
//!   run: a worker takes the first request, then waits up to
//!   [`ServeOptions::batch_timeout`] for more, up to the module's batch
//!   size. Under load batches fill instantly; at low load the timeout
//!   bounds added latency.
//! * **Deadlines**: a request filled via [`Request::fill_with_deadline`]
//!   (or an engine-wide [`ServeOptions::default_deadline`]) expires at
//!   submit time + budget. The batcher never executes an expired request —
//!   it resolves it with [`NeoError::DeadlineExceeded`] — and
//!   [`Request::wait`] cancels a request that expires while still queued.
//! * **Load shedding**: [`ServeEngine::try_submit`] never blocks. On a
//!   full queue it either rejects the new request with a typed
//!   [`NeoError::Busy`] ([`ShedPolicy::RejectNewest`]) or sheds the oldest
//!   queued request to make room ([`ShedPolicy::ShedOldest`]) —
//!   backpressure becomes an answer instead of a stall.
//! * **Fault containment** comes in two rings. The executor's per-node
//!   panic boundary turns kernel failures into a typed [`NeoError`] that
//!   fails only that batch. Above it, a **watchdog** thread supervises the
//!   workers themselves: a worker that dies (a panic escaping the
//!   per-batch boundary) or stalls past [`ServeOptions::stall_budget`] has
//!   its in-flight slots failed with [`NeoError::WorkerLost`] and is
//!   respawned with a fresh pooled context; respawn/stall counts surface
//!   in [`ServeReport`].
//! * **Lifecycle**: the engine walks `Starting → Ready → Draining →
//!   Stopped` (see [`EngineHealth`], queryable via
//!   [`ServeEngine::health`]). [`ServeEngine::shutdown_within`] stops
//!   admissions, drains what fits the budget, and fails the remainder with
//!   [`NeoError::Shutdown`]; [`ServeEngine::shutdown`] drains everything.
//! * Workers bind to distinct cores inside the engine's [`CoreSet`]
//!   (best effort; see [`ServeOptions::bind_workers`] /
//!   [`ServeOptions::core_set`]). Engines that do not pass an explicit
//!   set reserve slots from a process-global cursor, so two engines in
//!   one process land on disjoint cores by default.
//! * **Latency classes**: a request (or a whole engine, via
//!   [`ServeOptions::latency_class`]) marked [`LatencyClass::Interactive`]
//!   is queued ahead of bulk work and caps batch formation at what is
//!   already queued — it never waits out the batch timeout behind a large
//!   coalescing batch.
//! * **Work stealing**: engines linked as replicas of one
//!   [`crate::shard::ShardedEngine`] let an idle worker claim queued
//!   requests from a busy sibling replica, so one hot queue cannot
//!   starve while other partitions idle.
//!
//! The module executed by the engine should usually be compiled
//! single-threaded (`PoolChoice::Sequential`): the engine's workers are
//! the parallelism, one inference per core, which is the throughput-optimal
//! arrangement when requests outnumber cores (cf. the paper's §3.1.2 pool,
//! which optimizes the *latency* of one inference instead).

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, TryLockError, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use neocpu_tensor::{Layout, Shape, Tensor};
use neocpu_threadpool::affinity::{self, CoreSet};

use crate::executor::{Module, RunContext};
use crate::{NeoError, Result};

/// What [`ServeEngine::try_submit`] does when the submission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Reject the incoming request with [`NeoError::Busy`]; queued
    /// requests keep their place (FIFO fairness for admitted work).
    #[default]
    RejectNewest,
    /// Shed the *oldest* queued request (it resolves with
    /// [`NeoError::Busy`]) and admit the incoming one — prefers fresh
    /// work when queued requests are likely to miss their deadlines
    /// anyway.
    ShedOldest,
}

/// Scheduling class of a request (see [`ServeOptions::latency_class`] and
/// [`Request::set_latency_class`]).
///
/// The class changes *dispatch order*, not execution: interactive requests
/// jump ahead of bulk work in the submission queue, and a batch containing
/// one never waits out [`ServeOptions::batch_timeout`] for more rows — it
/// runs with whatever is already queued. Bulk requests get the full
/// coalescing treatment (larger batches, better throughput).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyClass {
    /// Latency-sensitive: dequeued first, caps batch-formation waits.
    Interactive,
    /// Throughput-oriented (default): coalesced up to the batch timeout.
    #[default]
    Bulk,
}

/// Engine lifecycle state (see [`ServeEngine::health`]).
///
/// ```text
/// Starting ──▶ Ready ──▶ Draining ──▶ Stopped
/// ```
///
/// `Starting` exists only inside [`ServeEngine::new`]; a handle you can
/// call is already `Ready`. `Draining` means admissions are closed but
/// queued work may still complete. The future TCP frontend's readiness
/// endpoint maps directly onto this state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EngineHealth {
    /// Constructing workers; not yet admitting requests.
    Starting = 0,
    /// Serving: admissions open, dead workers respawned.
    Ready = 1,
    /// Shutting down: admissions closed, draining within the budget.
    Draining = 2,
    /// Fully stopped: workers joined, remaining work failed with
    /// [`NeoError::Shutdown`].
    Stopped = 3,
}

impl EngineHealth {
    fn from_u8(v: u8) -> Self {
        Self::from_code(v).unwrap_or(Self::Stopped)
    }

    /// The state's stable one-byte code (`Starting = 0` … `Stopped = 3`),
    /// used verbatim by the wire protocol's health responses.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`EngineHealth::code`]; `None` for an unknown byte (a
    /// decoder must surface that as a typed frame error, not a panic).
    pub fn from_code(v: u8) -> Option<Self> {
        match v {
            0 => Some(Self::Starting),
            1 => Some(Self::Ready),
            2 => Some(Self::Draining),
            3 => Some(Self::Stopped),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Starting => "starting",
            Self::Ready => "ready",
            Self::Draining => "draining",
            Self::Stopped => "stopped",
        };
        f.write_str(s)
    }
}

/// Configuration of a [`ServeEngine`].
///
/// Validated by [`ServeEngine::new`]: zero `workers`, `queue_cap`,
/// `latency_capacity`, or `watchdog_interval` (and zero `stall_budget` /
/// `default_deadline` when set) are rejected with [`NeoError::Config`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads, each owning one [`RunContext`] (≥ 1).
    pub workers: usize,
    /// Upper bound on requests coalesced into one batched run. Clamped to
    /// the module's compiled batch size; `0` means "the module's batch".
    pub max_batch: usize,
    /// How long a worker holding a partial batch waits for more requests
    /// before running it anyway.
    pub batch_timeout: Duration,
    /// Bounded submission-queue capacity; a full queue blocks `submit`
    /// (backpressure) until a worker drains it, and makes `try_submit`
    /// shed per [`ServeOptions::shed_policy`].
    pub queue_cap: usize,
    /// Pin each worker to one core of the engine's [`CoreSet`] (best
    /// effort, Linux only). With [`ServeOptions::core_set`] unset the
    /// engine reserves `workers` slots from a process-global cursor over
    /// the cpuset, so concurrently constructed engines land on disjoint
    /// cores instead of all stacking onto `0..workers`.
    pub bind_workers: bool,
    /// Explicit cores for this engine's workers: worker `w` binds to the
    /// `w`-th core of the set, wrapping when the set is smaller than the
    /// worker count. `None` (default) reserves cores from the
    /// process-global cursor. Ignored unless `bind_workers` is set; an
    /// explicitly empty set is a configuration error.
    pub core_set: Option<CoreSet>,
    /// Default [`LatencyClass`] for requests that did not set their own
    /// via [`Request::set_latency_class`]. A registry fronting several
    /// models marks small-model routes `Interactive` so their requests
    /// never dally in batch formation behind bulk traffic.
    pub latency_class: LatencyClass,
    /// Latency samples retained for percentile reporting; older samples
    /// are overwritten ring-style so the warm path never reallocates.
    pub latency_capacity: usize,
    /// Deadline budget applied to every request that did not set its own
    /// via [`Request::fill_with_deadline`]. `None` (default) means
    /// requests never expire.
    pub default_deadline: Option<Duration>,
    /// What [`ServeEngine::try_submit`] does when the queue is full.
    pub shed_policy: ShedPolicy,
    /// If a worker stays busy on one batch longer than this, the watchdog
    /// declares it hung: its in-flight slots fail with
    /// [`NeoError::WorkerLost`], the thread is abandoned, and a fresh
    /// worker takes its place. `None` (default) disables stall detection —
    /// only worker *death* is then supervised.
    pub stall_budget: Option<Duration>,
    /// How often the watchdog scans the worker table. Each scan is a few
    /// flag reads per worker; the default (10 ms) adds no measurable load.
    pub watchdog_interval: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 0,
            batch_timeout: Duration::from_millis(1),
            queue_cap: 256,
            bind_workers: true,
            core_set: None,
            latency_class: LatencyClass::Bulk,
            latency_capacity: 65_536,
            default_deadline: None,
            shed_policy: ShedPolicy::RejectNewest,
            stall_budget: None,
            watchdog_interval: Duration::from_millis(10),
        }
    }
}

/// State of a request slot.
enum SlotState {
    /// Not submitted (or reset by [`Request::fill`] for reuse).
    Idle,
    /// In the queue or executing; the slot's buffers belong to the engine.
    Queued,
    /// Completed; outputs are valid.
    Done,
    /// Resolved with this error (batch failure, deadline, shed, worker
    /// loss, or shutdown).
    Failed(NeoError),
}

/// Everything a request owns, under one lock.
struct SlotInner {
    state: SlotState,
    /// Submission generation: bumped on every (try_)submit. Resolvers
    /// (worker, watchdog, deadline cancel, drain) only touch the slot if
    /// their captured seq still matches, so a slot re-submitted after a
    /// failure can never be stomped by a stale resolver, and no request
    /// is ever double-resolved.
    seq: u64,
    /// Caller-filled single-image input (leading dim 1).
    input: Tensor,
    /// One single-image buffer per module output, filled on completion.
    outputs: Vec<Tensor>,
    /// Submission timestamp, for queue-to-completion latency.
    submitted: Instant,
    /// Per-request deadline budget set by [`Request::fill_with_deadline`].
    budget: Option<Duration>,
    /// Absolute deadline, fixed at submit time (budget or the engine
    /// default, added to the submission instant).
    deadline: Option<Instant>,
    /// Scheduling class override; `None` falls back to the admitting
    /// engine's [`ServeOptions::latency_class`]. Persists across fills.
    class: Option<LatencyClass>,
    /// The engine that admitted the current submission, for deadline
    /// cancellation from `wait` (weak: a request must not keep a dropped
    /// engine's threads alive). Set per submit, because a sharded
    /// dispatcher may route each submission of one slot to a different
    /// replica.
    engine: Weak<Shared>,
}

/// A reusable request slot: one in-flight inference.
///
/// Created by [`ServeEngine::make_request`] with all buffers
/// pre-allocated; the fill → submit → wait → read cycle performs no heap
/// allocations, so a client looping on one slot preserves the arena
/// executor's zero-allocation warm path end to end.
///
/// A slot may be reused (fill again after `wait` returns) but not aliased:
/// submitting a slot that is already in flight is an error.
///
/// Every submitted request resolves to exactly one outcome: `Ok` from
/// [`Request::wait`], or one typed error — execution failure,
/// [`NeoError::DeadlineExceeded`], [`NeoError::Busy`] (shed),
/// [`NeoError::WorkerLost`], or [`NeoError::Shutdown`].
pub struct Request {
    module_uid: u64,
    inner: Mutex<SlotInner>,
    done: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort panic payload extraction for [`NeoError::WorkerLost`].
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Moves a queued slot to `Failed(err)` iff it is still the `seq`-th
/// submission; returns whether this call resolved it. The seq guard makes
/// resolution exactly-once across racing resolvers.
fn resolve_failure(req: &Request, seq: u64, err: &NeoError) -> bool {
    let mut inner = lock(&req.inner);
    if !matches!(inner.state, SlotState::Queued) || inner.seq != seq {
        return false;
    }
    inner.state = SlotState::Failed(err.clone());
    drop(inner);
    req.done.notify_all();
    true
}

impl Request {
    /// Copies `data` into the slot's input buffer, resetting the slot for
    /// (re-)submission with no per-request deadline (the engine's
    /// [`ServeOptions::default_deadline`] still applies, if set).
    ///
    /// # Errors
    ///
    /// Rejects an in-flight slot and shape/layout mismatches.
    pub fn fill(&self, data: &Tensor) -> Result<()> {
        self.fill_impl(data, None)
    }

    /// Like [`Request::fill`], but arms a deadline: the request expires
    /// `budget` after the moment it is submitted. An expired request is
    /// never executed — the batcher resolves it with
    /// [`NeoError::DeadlineExceeded`] — and [`Request::wait`] returns the
    /// same error as soon as the deadline passes while the request is
    /// still queued.
    ///
    /// # Errors
    ///
    /// As [`Request::fill`].
    pub fn fill_with_deadline(&self, data: &Tensor, budget: Duration) -> Result<()> {
        self.fill_impl(data, Some(budget))
    }

    /// Fills the slot's input straight from a little-endian `f32` byte
    /// stream (the wire protocol's payload encoding), avoiding the staging
    /// tensor a [`Request::fill`] caller would need. `budget` arms a
    /// deadline exactly like [`Request::fill_with_deadline`]; `None` leaves
    /// the engine default in force. Performs no heap allocations — this is
    /// the networked frontend's warm decode path.
    ///
    /// # Errors
    ///
    /// Rejects an in-flight slot, and payloads whose byte length is not
    /// exactly `4 ×` the input element count.
    pub fn fill_le_bytes(&self, bytes: &[u8], budget: Option<Duration>) -> Result<()> {
        let mut inner = lock(&self.inner);
        if matches!(inner.state, SlotState::Queued) {
            return Err(NeoError::Serve("cannot fill a request that is in flight".into()));
        }
        let want = inner.input.data().len() * 4;
        if bytes.len() != want {
            return Err(NeoError::BadInput(format!(
                "payload must be exactly {want} bytes of little-endian f32, got {}",
                bytes.len()
            )));
        }
        for (dst, src) in inner.input.data_mut().iter_mut().zip(bytes.chunks_exact(4)) {
            *dst = f32::from_le_bytes([src[0], src[1], src[2], src[3]]);
        }
        inner.state = SlotState::Idle;
        inner.budget = budget;
        Ok(())
    }

    fn fill_impl(&self, data: &Tensor, budget: Option<Duration>) -> Result<()> {
        let mut inner = lock(&self.inner);
        if matches!(inner.state, SlotState::Queued) {
            return Err(NeoError::Serve("cannot fill a request that is in flight".into()));
        }
        if data.shape().dims() != inner.input.shape().dims()
            || data.layout() != inner.input.layout()
        {
            return Err(NeoError::BadInput(format!(
                "request input must be {} {}, got {} {}",
                inner.input.shape(),
                inner.input.layout(),
                data.shape(),
                data.layout()
            )));
        }
        inner.input.data_mut().copy_from_slice(data.data());
        inner.state = SlotState::Idle;
        inner.budget = budget;
        Ok(())
    }

    /// Blocks until the request resolves. Honors the request's deadline:
    /// if it passes while the request is still waiting in the queue, the
    /// request is pulled out, resolved with
    /// [`NeoError::DeadlineExceeded`], and never executed. A request
    /// already inside a worker's batch is past cancellation — `wait` then
    /// blocks for the batch outcome (bounded by the batch itself).
    ///
    /// # Errors
    ///
    /// Returns the typed resolution error when the request failed, or a
    /// protocol error for a slot that was never submitted.
    pub fn wait(&self) -> Result<()> {
        let mut inner = lock(&self.inner);
        loop {
            if !matches!(inner.state, SlotState::Queued) {
                break;
            }
            match inner.deadline {
                None => {
                    inner = self.done.wait(inner).unwrap_or_else(PoisonError::into_inner);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now < d {
                        let (guard, _) = self
                            .done
                            .wait_timeout(inner, d - now)
                            .unwrap_or_else(PoisonError::into_inner);
                        inner = guard;
                    } else {
                        // Expired while queued: try to cancel. This needs
                        // the queue lock, so release the slot first (lock
                        // order is queue → slot).
                        let seq = inner.seq;
                        drop(inner);
                        if self.cancel_expired(seq) {
                            return Err(NeoError::DeadlineExceeded);
                        }
                        inner = lock(&self.inner);
                        if matches!(inner.state, SlotState::Queued) {
                            // In a worker's batch: resolution is imminent;
                            // wait for the batch outcome.
                            inner =
                                self.done.wait(inner).unwrap_or_else(PoisonError::into_inner);
                        }
                    }
                }
            }
        }
        match &inner.state {
            SlotState::Done => Ok(()),
            SlotState::Failed(e) => Err(e.clone()),
            SlotState::Idle | SlotState::Queued => {
                Err(NeoError::Serve("request was not submitted".into()))
            }
        }
    }

    /// Pins the slot's scheduling class (see [`LatencyClass`]); the class
    /// persists across fills and resubmissions until set again. Without a
    /// pinned class, requests inherit the admitting engine's
    /// [`ServeOptions::latency_class`].
    ///
    /// # Errors
    ///
    /// Rejects a slot that is currently in flight.
    pub fn set_latency_class(&self, class: LatencyClass) -> Result<()> {
        let mut inner = lock(&self.inner);
        if matches!(inner.state, SlotState::Queued) {
            return Err(NeoError::Serve("cannot reclass a request that is in flight".into()));
        }
        inner.class = Some(class);
        Ok(())
    }

    /// Removes this request from the admitting engine's queue (if still
    /// there) and resolves it as expired. Returns whether this call
    /// resolved it.
    fn cancel_expired(&self, seq: u64) -> bool {
        // Lock order is queue → slot, so read the engine weak and release
        // the slot before touching the queue.
        let engine = {
            let inner = lock(&self.inner);
            if inner.seq != seq {
                return false;
            }
            inner.engine.clone()
        };
        let Some(shared) = engine.upgrade() else {
            // Engine gone; resolve locally so the waiter cannot hang.
            return resolve_failure(self, seq, &NeoError::DeadlineExceeded);
        };
        let mut q = lock(&shared.queue);
        let me = |(r, s): &(Arc<Request>, u64)| {
            std::ptr::eq(Arc::as_ptr(r), self as *const Request) && *s == seq
        };
        if let Some(pos) = q.hi.iter().position(me) {
            q.hi.remove(pos);
        } else if let Some(pos) = q.bulk.iter().position(me) {
            q.bulk.remove(pos);
        } else {
            return false;
        }
        drop(q);
        shared.not_full.notify_one();
        if resolve_failure(self, seq, &NeoError::DeadlineExceeded) {
            lock(&shared.stats).deadline_exceeded += 1;
            true
        } else {
            false
        }
    }

    /// Reads the completed outputs without copying: `f` runs under the
    /// slot lock with the single-image output tensors.
    ///
    /// # Errors
    ///
    /// Returns the request's failure, or a protocol error when no
    /// completed result is available.
    pub fn with_outputs<R>(&self, f: impl FnOnce(&[Tensor]) -> R) -> Result<R> {
        let inner = lock(&self.inner);
        match &inner.state {
            SlotState::Done => Ok(f(&inner.outputs)),
            SlotState::Failed(e) => Err(e.clone()),
            SlotState::Idle | SlotState::Queued => {
                Err(NeoError::Serve("request has no completed result".into()))
            }
        }
    }

    /// Detached copy of completed output `i`.
    ///
    /// # Errors
    ///
    /// As [`Request::with_outputs`]; also rejects an out-of-range index.
    pub fn output(&self, i: usize) -> Result<Tensor> {
        self.with_outputs(|outs| outs.get(i).cloned())?
            .ok_or_else(|| NeoError::Serve(format!("request has no output #{i}")))
    }
}

/// The bounded submission queue plus its synchronization: two priority
/// lanes (interactive ahead of bulk) that share one capacity.
struct QueueInner {
    /// Interactive lane, always drained before `bulk`.
    hi: VecDeque<(Arc<Request>, u64)>,
    /// Bulk lane (the common case).
    bulk: VecDeque<(Arc<Request>, u64)>,
    stopping: bool,
    depth_hwm: usize,
}

impl QueueInner {
    fn len(&self) -> usize {
        self.hi.len() + self.bulk.len()
    }

    /// Oldest queued item regardless of lane, for shed-oldest and drain
    /// cancellation (bulk first: shedding prefers to sacrifice bulk work).
    fn pop_oldest_any(&mut self) -> Option<(Arc<Request>, u64)> {
        self.bulk.pop_front().or_else(|| self.hi.pop_front())
    }
}

/// Aggregate counters and the latency ring, under one lock (touched once
/// per request/batch — cheap next to an inference).
struct ServeStats {
    /// Queue-to-completion latencies, µs; ring-overwritten past capacity.
    latencies_us: Vec<f64>,
    ring_next: usize,
    completed: u64,
    failed: u64,
    deadline_exceeded: u64,
    shed: u64,
    cancelled: u64,
    respawns: u64,
    stalls: u64,
    batches: u64,
    batched_requests: u64,
    multi_batches: u64,
    max_batch_formed: usize,
    /// Requests this engine's workers claimed from sibling replicas'
    /// queues (counted on the stealing engine).
    stolen: u64,
}

/// One worker's supervision record in the watchdog's table.
struct WorkerEntry {
    /// The thread handle; `None` after the worker was joined or abandoned
    /// (a hung thread is detached, never joined).
    handle: Option<JoinHandle<()>>,
    /// Bumped on every respawn/abandonment. A worker whose generation no
    /// longer matches its entry has been replaced: it must not touch the
    /// entry or any slot (the seq guard enforces the latter).
    generation: u64,
    /// Cleared by the worker's exit guard (even on unwind) and by the
    /// watchdog when it abandons a stalled thread.
    alive: bool,
    /// When the current batch started executing; `None` while idle.
    busy_since: Option<Instant>,
    /// The slots of the batch currently executing, for failure resolution
    /// if the worker is lost mid-batch. Pre-reserved at `max_batch`.
    in_flight: Vec<(Arc<Request>, u64)>,
    /// The core this worker verified itself bound to (it re-reads its
    /// mask from the kernel after binding), `None` when unbound. Lets
    /// tests prove two engines' workers landed on disjoint cores.
    bound_core: Option<usize>,
}

/// State shared between the engine handle, its workers, and the watchdog.
struct Shared {
    queue: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    queue_cap: usize,
    stats: Mutex<ServeStats>,
    /// Worker supervision table, indexed by worker slot.
    ///
    /// Lock order (no cycles): queue → workers → request slot → stats.
    workers: Mutex<Vec<WorkerEntry>>,
    /// Signaled (with `workers` held or just released) whenever a worker's
    /// `alive` flag clears; shutdown waits on it.
    worker_exited: Condvar,
    /// [`EngineHealth`] as its `u8` repr.
    health: AtomicU8,
    /// Watchdog parking: `true` tells the watchdog to exit.
    watchdog_stop: Mutex<bool>,
    watchdog_cv: Condvar,
    /// Sibling replicas' shared state, set once by
    /// [`link_replicas`] when this engine serves inside a
    /// [`crate::shard::ShardedEngine`]. Idle workers steal queued
    /// requests from these queues (weak: a replica must not keep a
    /// dropped sibling's state alive).
    siblings: OnceLock<Vec<Weak<Shared>>>,
}

impl Shared {
    fn health(&self) -> EngineHealth {
        EngineHealth::from_u8(self.health.load(Ordering::Acquire))
    }

    fn set_health(&self, h: EngineHealth) {
        self.health.store(h as u8, Ordering::Release);
    }
}

/// Point-in-time serving statistics (see [`ServeEngine::report`]).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests failed by their batch (execution error or worker loss).
    pub failed: u64,
    /// Requests resolved as expired ([`NeoError::DeadlineExceeded`])
    /// without ever executing.
    pub deadline_exceeded: u64,
    /// Requests shed by admission control ([`NeoError::Busy`] under
    /// [`ShedPolicy::ShedOldest`]; rejected-newest requests were never
    /// admitted and are not counted here).
    pub shed: u64,
    /// Requests failed with [`NeoError::Shutdown`] because the drain
    /// budget ran out before they could execute.
    pub cancelled: u64,
    /// Workers respawned by the watchdog after death or a stall.
    pub respawns: u64,
    /// Stalled workers abandoned by the watchdog (a subset of the events
    /// behind `respawns`).
    pub stalls: u64,
    /// Requests this engine's workers claimed from sibling replicas'
    /// queues (non-zero only inside a [`crate::shard::ShardedEngine`];
    /// the stolen requests' completions are also counted here, on the
    /// engine that executed them).
    pub stolen: u64,
    /// Batched runs executed.
    pub batches: u64,
    /// Batches that coalesced more than one request.
    pub multi_batches: u64,
    /// Mean formed batch size (requests per run).
    pub mean_batch: f64,
    /// Largest batch formed.
    pub max_batch_formed: usize,
    /// Submission-queue depth high-water mark.
    pub queue_depth_hwm: usize,
    /// Latency samples currently retained (≤
    /// [`ServeOptions::latency_capacity`]); percentiles below are computed
    /// over exactly these samples.
    pub latency_samples: usize,
    /// Median queue-to-completion latency, ms. Percentiles use the
    /// nearest-rank method (`ceil(p/100 · n)`-th smallest sample): exact
    /// for any non-empty sample set — on tiny sets high percentiles
    /// collapse to the observed maximum instead of extrapolating — and
    /// `NaN` when no samples exist (no data is not "0 ms").
    pub p50_ms: f64,
    /// 95th-percentile latency, ms (see `p50_ms` for the method).
    pub p95_ms: f64,
    /// 99th-percentile latency, ms (see `p50_ms` for the method).
    pub p99_ms: f64,
    /// Worker threads serving the engine.
    pub workers: usize,
    /// The module's compiled batch size B.
    pub module_batch: usize,
    /// Arena bytes of one pooled context (× `workers` = pool total).
    pub arena_bytes_per_context: usize,
    /// Wall time since the engine started, seconds.
    pub elapsed_s: f64,
    /// Engine lifecycle state at snapshot time.
    pub health: EngineHealth,
}

impl ServeReport {
    /// Completed images per second over the engine's lifetime.
    pub fn images_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.completed as f64 / self.elapsed_s
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ok / {} failed in {:.2}s ({:.1} img/s) | {} batches (mean {:.2}, max {}, >1: {}) \
             | queue hwm {} | p50 {:.2} ms p95 {:.2} ms p99 {:.2} ms ({} samples) \
             | {} workers × {} KiB arena | {} expired, {} shed, {} cancelled, {} stolen \
             | {} respawns ({} stalls) | {}",
            self.completed,
            self.failed,
            self.elapsed_s,
            self.images_per_sec(),
            self.batches,
            self.mean_batch,
            self.max_batch_formed,
            self.multi_batches,
            self.queue_depth_hwm,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.latency_samples,
            self.workers,
            self.arena_bytes_per_context / 1024,
            self.deadline_exceeded,
            self.shed,
            self.cancelled,
            self.stolen,
            self.respawns,
            self.stalls,
            self.health,
        )
    }
}

/// The serving engine: owns the queue, the batcher, the worker pool, and
/// the watchdog supervising it.
///
/// Dropping the engine shuts it down: the queue is drained, workers join.
pub struct ServeEngine {
    module: Arc<Module>,
    shared: Arc<Shared>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
    worker_count: usize,
    batch: usize,
    image_shape: Shape,
    input_layout: Layout,
    out_row_shapes: Vec<Shape>,
    out_layouts: Vec<Layout>,
    default_deadline: Option<Duration>,
    shed_policy: ShedPolicy,
    latency_class: LatencyClass,
    cores: Option<CoreSet>,
    started: Instant,
}

fn validate(opts: &ServeOptions) -> Result<()> {
    if opts.workers == 0 {
        return Err(NeoError::Config("ServeOptions::workers must be at least 1".into()));
    }
    if opts.queue_cap == 0 {
        return Err(NeoError::Config("ServeOptions::queue_cap must be at least 1".into()));
    }
    if opts.latency_capacity == 0 {
        return Err(NeoError::Config("ServeOptions::latency_capacity must be at least 1".into()));
    }
    if opts.watchdog_interval.is_zero() {
        return Err(NeoError::Config("ServeOptions::watchdog_interval must be non-zero".into()));
    }
    if opts.stall_budget.is_some_and(|d| d.is_zero()) {
        return Err(NeoError::Config(
            "ServeOptions::stall_budget must be non-zero when set".into(),
        ));
    }
    if opts.default_deadline.is_some_and(|d| d.is_zero()) {
        return Err(NeoError::Config(
            "ServeOptions::default_deadline must be non-zero when set".into(),
        ));
    }
    if opts.core_set.as_ref().is_some_and(CoreSet::is_empty) {
        return Err(NeoError::Config(
            "ServeOptions::core_set must be non-empty when set".into(),
        ));
    }
    Ok(())
}

impl ServeEngine {
    /// Starts an engine over `module` with `opts`.
    ///
    /// The module must have exactly one graph input; every output's
    /// leading dimension must equal the input's batch size B, so the
    /// engine can slice per-request rows out of a batched run.
    ///
    /// # Errors
    ///
    /// Returns [`NeoError::Config`] for invalid options (see
    /// [`ServeOptions`]) and [`NeoError::Serve`] when the module's
    /// signature cannot be served (multi-input, non-batched outputs).
    pub fn new(module: Arc<Module>, opts: &ServeOptions) -> Result<Self> {
        validate(opts)?;
        let input_shapes = module.input_shapes();
        let [input_shape] = input_shapes.as_slice() else {
            return Err(NeoError::Serve(format!(
                "batched serving requires exactly one graph input, module has {}",
                input_shapes.len()
            )));
        };
        let batch = input_shape.dims().first().copied().unwrap_or(1).max(1);
        let out_shapes = module.output_shapes();
        for (i, s) in out_shapes.iter().enumerate() {
            if s.dims().first().copied().unwrap_or(0) != batch {
                return Err(NeoError::Serve(format!(
                    "output #{i} has shape {s}; leading dim must equal the input batch {batch} \
                     so per-request rows can be sliced out"
                )));
            }
        }
        let mut image_dims = input_shape.dims().to_vec();
        image_dims[0] = 1;
        let image_shape = Shape::new(image_dims);
        let input_layout = module.input_layouts()[0];
        let out_layouts = module.output_layouts();
        let out_row_shapes: Vec<Shape> = out_shapes
            .iter()
            .map(|s| {
                let mut d = s.dims().to_vec();
                d[0] = 1;
                Shape::new(d)
            })
            .collect();

        let max_batch = if opts.max_batch == 0 { batch } else { opts.max_batch.min(batch) };
        // Resolve where this engine's workers may pin: an explicit set
        // wins; otherwise reserve slots from the process-global cursor so
        // concurrently constructed engines do not stack onto the same
        // cores. A reservation that comes back empty (no affinity API)
        // degrades to unbound.
        let cores = if opts.bind_workers {
            match &opts.core_set {
                Some(set) => Some(set.clone()),
                None => {
                    let reserved = affinity::reserve_cores(opts.workers);
                    (!reserved.is_empty()).then_some(reserved)
                }
            }
        } else {
            None
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueInner {
                hi: VecDeque::with_capacity(opts.queue_cap),
                bulk: VecDeque::with_capacity(opts.queue_cap),
                stopping: false,
                depth_hwm: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_cap: opts.queue_cap,
            stats: Mutex::new(ServeStats {
                latencies_us: Vec::with_capacity(opts.latency_capacity),
                ring_next: 0,
                completed: 0,
                failed: 0,
                deadline_exceeded: 0,
                shed: 0,
                cancelled: 0,
                respawns: 0,
                stalls: 0,
                batches: 0,
                batched_requests: 0,
                multi_batches: 0,
                max_batch_formed: 0,
                stolen: 0,
            }),
            workers: Mutex::new(Vec::with_capacity(opts.workers)),
            worker_exited: Condvar::new(),
            health: AtomicU8::new(EngineHealth::Starting as u8),
            watchdog_stop: Mutex::new(false),
            watchdog_cv: Condvar::new(),
            siblings: OnceLock::new(),
        });

        let template = WorkerTemplate {
            module: Arc::clone(&module),
            shared: Arc::clone(&shared),
            max_batch,
            batch_timeout: opts.batch_timeout,
            cores: cores.clone(),
            input_shape: input_shape.clone(),
            input_layout,
        };

        {
            let mut workers = lock(&shared.workers);
            for _ in 0..opts.workers {
                workers.push(WorkerEntry {
                    handle: None,
                    generation: 0,
                    alive: false,
                    busy_since: None,
                    in_flight: Vec::with_capacity(max_batch),
                    bound_core: None,
                });
            }
            for w in 0..opts.workers {
                match spawn_worker(&template, w, 0) {
                    Ok(h) => {
                        let entry = &mut workers[w];
                        entry.handle = Some(h);
                        entry.alive = true;
                    }
                    Err(e) => {
                        drop(workers);
                        abort_startup(&shared);
                        return Err(NeoError::Serve(format!("failed to spawn worker: {e}")));
                    }
                }
            }
        }

        let watchdog_cfg = WatchdogCfg {
            shared: Arc::clone(&shared),
            template,
            interval: opts.watchdog_interval,
            stall_budget: opts.stall_budget,
        };
        let watchdog = match std::thread::Builder::new()
            .name("neocpu-serve-watchdog".into())
            .spawn(move || watchdog_loop(&watchdog_cfg))
        {
            Ok(h) => h,
            Err(e) => {
                abort_startup(&shared);
                return Err(NeoError::Serve(format!("failed to spawn watchdog: {e}")));
            }
        };

        shared.set_health(EngineHealth::Ready);
        Ok(Self {
            module,
            shared,
            watchdog: Mutex::new(Some(watchdog)),
            worker_count: opts.workers,
            batch,
            image_shape,
            input_layout,
            out_row_shapes,
            out_layouts,
            default_deadline: opts.default_deadline,
            shed_policy: opts.shed_policy,
            latency_class: opts.latency_class,
            cores,
            started: Instant::now(),
        })
    }

    /// The cores this engine's workers bind inside (`None` when binding
    /// is disabled or unavailable).
    pub fn core_set(&self) -> Option<&CoreSet> {
        self.cores.as_ref()
    }

    /// The core each worker verified itself bound to (indexed by worker
    /// slot; `None` for unbound workers or workers still starting). A
    /// worker re-reads its affinity mask from the kernel after binding,
    /// so this reflects what actually took effect — tests use it to prove
    /// two engines' workers occupy disjoint cores.
    pub fn bound_cores(&self) -> Vec<Option<usize>> {
        lock(&self.shared.workers).iter().map(|e| e.bound_core).collect()
    }

    /// The module's compiled batch size B (the batcher's ceiling).
    pub fn module_batch(&self) -> usize {
        self.batch
    }

    /// Current engine lifecycle state (cheap: one atomic load). The future
    /// networked frontend's readiness endpoint reads this.
    pub fn health(&self) -> EngineHealth {
        self.shared.health()
    }

    /// Current submission-queue depth (requests admitted, not yet picked
    /// up by a worker).
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.queue).len()
    }

    /// Creates a request slot with pre-allocated input/output buffers.
    ///
    /// This is the only allocating step of a client's steady state:
    /// allocate one slot per concurrent request, then loop
    /// fill → submit → wait on it allocation-free.
    pub fn make_request(&self) -> Arc<Request> {
        let input = Tensor::zeros(self.image_shape.clone(), self.input_layout)
            .expect("image shape was validated at engine construction");
        let outputs = self
            .out_row_shapes
            .iter()
            .zip(&self.out_layouts)
            .map(|(s, &l)| {
                Tensor::zeros(s.clone(), l).expect("output row shape mirrors a planned value")
            })
            .collect();
        Arc::new(Request {
            module_uid: self.module.uid(),
            inner: Mutex::new(SlotInner {
                state: SlotState::Idle,
                seq: 0,
                input,
                outputs,
                submitted: Instant::now(),
                budget: None,
                deadline: None,
                class: None,
                engine: Weak::new(),
            }),
            done: Condvar::new(),
        })
    }

    /// Enqueues a filled request slot; blocks while the queue is full
    /// (backpressure) — but never past the request's deadline. Returns as
    /// soon as the request is queued — pair with [`Request::wait`].
    ///
    /// # Errors
    ///
    /// Rejects requests made by another engine's module and slots already
    /// in flight; returns [`NeoError::Shutdown`] once the engine is
    /// draining or stopped, and [`NeoError::DeadlineExceeded`] when the
    /// deadline passes while blocked on a full queue.
    pub fn submit(&self, req: &Arc<Request>) -> Result<()> {
        self.admit(req, true)
    }

    /// Non-blocking admission. On a full queue, applies
    /// [`ServeOptions::shed_policy`]: either rejects this request with
    /// [`NeoError::Busy`] (reject-newest, the default) or sheds the
    /// oldest queued request — which then resolves with
    /// [`NeoError::Busy`] — and admits this one (shed-oldest).
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit`], plus [`NeoError::Busy`] under
    /// reject-newest.
    pub fn try_submit(&self, req: &Arc<Request>) -> Result<()> {
        self.admit(req, false)
    }

    fn admit(&self, req: &Arc<Request>, blocking: bool) -> Result<()> {
        if req.module_uid != self.module.uid() {
            return Err(NeoError::Serve("request belongs to a different engine".into()));
        }
        let (seq, deadline, class) = {
            let mut inner = lock(&req.inner);
            if matches!(inner.state, SlotState::Queued) {
                return Err(NeoError::Serve("request is already in flight".into()));
            }
            let now = Instant::now();
            inner.seq = inner.seq.wrapping_add(1);
            inner.state = SlotState::Queued;
            inner.submitted = now;
            inner.deadline =
                inner.budget.or(self.default_deadline).and_then(|b| now.checked_add(b));
            inner.engine = Arc::downgrade(&self.shared);
            (inner.seq, inner.deadline, inner.class.unwrap_or(self.latency_class))
        };
        let mut q = lock(&self.shared.queue);
        loop {
            if q.stopping {
                drop(q);
                lock(&req.inner).state = SlotState::Idle;
                return Err(NeoError::Shutdown);
            }
            if q.len() < self.shared.queue_cap {
                break;
            }
            if !blocking {
                let queue_depth = q.len();
                match self.shed_policy {
                    ShedPolicy::RejectNewest => {
                        drop(q);
                        lock(&req.inner).state = SlotState::Idle;
                        return Err(NeoError::Busy { queue_depth });
                    }
                    ShedPolicy::ShedOldest => {
                        if let Some((victim, vseq)) = q.pop_oldest_any() {
                            if resolve_failure(&victim, vseq, &NeoError::Busy { queue_depth }) {
                                lock(&self.shared.stats).shed += 1;
                            }
                        }
                        break;
                    }
                }
            }
            match deadline {
                None => {
                    q = self.shared.not_full.wait(q).unwrap_or_else(PoisonError::into_inner);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        drop(q);
                        lock(&req.inner).state = SlotState::Idle;
                        lock(&self.shared.stats).deadline_exceeded += 1;
                        return Err(NeoError::DeadlineExceeded);
                    }
                    let (guard, _) = self
                        .shared
                        .not_full
                        .wait_timeout(q, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    q = guard;
                }
            }
        }
        match class {
            LatencyClass::Interactive => q.hi.push_back((Arc::clone(req), seq)),
            LatencyClass::Bulk => q.bulk.push_back((Arc::clone(req), seq)),
        }
        if q.len() > q.depth_hwm {
            q.depth_hwm = q.len();
        }
        drop(q);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// One-shot convenience: fill a fresh slot, submit, wait, and return
    /// detached output copies. Allocates per call — latency/throughput
    /// loops should hold their own slot instead.
    ///
    /// # Errors
    ///
    /// Propagates submit/execution failures.
    pub fn infer(&self, input: &Tensor) -> Result<Vec<Tensor>> {
        let req = self.make_request();
        req.fill(input)?;
        self.submit(&req)?;
        req.wait()?;
        req.with_outputs(|outs| outs.to_vec())
    }

    /// Snapshot of the engine's serving statistics.
    pub fn report(&self) -> ServeReport {
        let mut raw = raw_stats(&self.shared);
        raw.workers = self.worker_count;
        build_report(
            raw,
            self.batch,
            self.module.memory_report().planned_peak_bytes,
            self.started.elapsed().as_secs_f64(),
            self.shared.health(),
        )
    }

    /// Stops the engine gracefully, drain bounded by `budget`: admissions
    /// close immediately (health moves to [`EngineHealth::Draining`]),
    /// queued requests keep executing while the budget lasts, and
    /// everything still queued when it runs out is failed with
    /// [`NeoError::Shutdown`] (counted as `cancelled` in the report).
    /// Workers then exit and are joined; health ends at
    /// [`EngineHealth::Stopped`]. Idempotent and safe to race.
    pub fn shutdown_within(&self, budget: Duration) {
        self.drain_shutdown(Instant::now().checked_add(budget));
    }

    /// Stops the engine: in-queue requests are drained and answered
    /// (unbounded drain), then workers exit and are joined. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&self) {
        self.drain_shutdown(None);
    }

    fn drain_shutdown(&self, deadline: Option<Instant>) {
        let _ = self.shared.health.compare_exchange(
            EngineHealth::Ready as u8,
            EngineHealth::Draining as u8,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        {
            let mut q = lock(&self.shared.queue);
            q.stopping = true;
            // Wake everything: blocked submitters (→ Shutdown), idle
            // workers (→ drain mode).
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
            // Drain-or-budget: wait for workers to empty the queue, in
            // slices so a vanished workforce or an expired budget is
            // noticed promptly.
            loop {
                if q.len() == 0 {
                    break;
                }
                let any_alive = lock(&self.shared.workers).iter().any(|e| e.alive);
                if !any_alive {
                    // Draining blocks respawns; nobody will ever pop.
                    break;
                }
                let now = Instant::now();
                let slice = match deadline {
                    Some(d) if now >= d => break,
                    Some(d) => (d - now).min(Duration::from_millis(25)),
                    None => Duration::from_millis(25),
                };
                let (guard, _) = self
                    .shared
                    .not_full
                    .wait_timeout(q, slice)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
            // Whatever is left missed the budget.
            let mut cancelled = 0u64;
            while let Some((req, seq)) = q.pop_oldest_any() {
                if resolve_failure(&req, seq, &NeoError::Shutdown) {
                    cancelled += 1;
                }
            }
            if cancelled > 0 {
                lock(&self.shared.stats).cancelled += cancelled;
            }
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();

        // Wait for every worker to exit (in-flight batches complete; hung
        // workers are abandoned by the watchdog if a stall budget is set),
        // then join outside the lock — a worker's exit guard takes the
        // workers lock.
        let handles: Vec<JoinHandle<()>> = {
            let mut workers = lock(&self.shared.workers);
            loop {
                if workers.iter().all(|e| !e.alive) {
                    break;
                }
                let (guard, _) = self
                    .shared
                    .worker_exited
                    .wait_timeout(workers, Duration::from_millis(25))
                    .unwrap_or_else(PoisonError::into_inner);
                workers = guard;
                self.shared.not_empty.notify_all();
            }
            workers.iter_mut().filter_map(|e| e.handle.take()).collect()
        };
        for h in handles {
            let _ = h.join();
        }

        {
            let mut stop = lock(&self.shared.watchdog_stop);
            *stop = true;
            self.shared.watchdog_cv.notify_all();
        }
        if let Some(h) = lock(&self.watchdog).take() {
            let _ = h.join();
        }
        self.shared.set_health(EngineHealth::Stopped);
    }
}

/// Raw, unsorted statistics pulled from one engine's shared state —
/// the mergeable form of a [`ServeReport`]. Fleet-wide percentiles need
/// the raw latency samples (percentiles of percentiles are meaningless),
/// so replicas are merged at this level.
pub(crate) struct RawStats {
    lat: Vec<f64>,
    completed: u64,
    failed: u64,
    deadline_exceeded: u64,
    shed: u64,
    cancelled: u64,
    respawns: u64,
    stalls: u64,
    stolen: u64,
    batches: u64,
    batched_requests: u64,
    multi_batches: u64,
    max_batch_formed: usize,
    depth_hwm: usize,
    workers: usize,
}

fn raw_stats(shared: &Shared) -> RawStats {
    let depth_hwm = lock(&shared.queue).depth_hwm;
    let st = lock(&shared.stats);
    RawStats {
        lat: st.latencies_us.clone(),
        completed: st.completed,
        failed: st.failed,
        deadline_exceeded: st.deadline_exceeded,
        shed: st.shed,
        cancelled: st.cancelled,
        respawns: st.respawns,
        stalls: st.stalls,
        stolen: st.stolen,
        batches: st.batches,
        batched_requests: st.batched_requests,
        multi_batches: st.multi_batches,
        max_batch_formed: st.max_batch_formed,
        depth_hwm,
        workers: 0,
    }
}

/// Builds a [`ServeReport`] from raw stats. Percentiles use the
/// nearest-rank method (`ceil(p/100 · n)`-th smallest sample): exact for
/// any non-empty set (p50 of one sample is that sample; tiny sets
/// collapse high percentiles to the max) and NaN when empty — merged
/// sharded reports with no completions stay NaN, not a bogus 0 ms.
fn build_report(
    raw: RawStats,
    module_batch: usize,
    arena_bytes_per_context: usize,
    elapsed_s: f64,
    health: EngineHealth,
) -> ServeReport {
    let mut lat = raw.lat;
    lat.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            return f64::NAN;
        }
        let rank = ((p / 100.0) * lat.len() as f64).ceil() as usize;
        lat[rank.clamp(1, lat.len()) - 1] / 1e3
    };
    ServeReport {
        completed: raw.completed,
        failed: raw.failed,
        deadline_exceeded: raw.deadline_exceeded,
        shed: raw.shed,
        cancelled: raw.cancelled,
        respawns: raw.respawns,
        stalls: raw.stalls,
        stolen: raw.stolen,
        batches: raw.batches,
        multi_batches: raw.multi_batches,
        mean_batch: if raw.batches > 0 {
            raw.batched_requests as f64 / raw.batches as f64
        } else {
            0.0
        },
        max_batch_formed: raw.max_batch_formed,
        queue_depth_hwm: raw.depth_hwm,
        latency_samples: lat.len(),
        p50_ms: pct(50.0),
        p95_ms: pct(95.0),
        p99_ms: pct(99.0),
        workers: raw.workers,
        module_batch,
        arena_bytes_per_context,
        elapsed_s,
        health,
    }
}

/// Fleet-wide report over replica engines of one module: counters sum,
/// latency rings concatenate (percentiles are recomputed over the union,
/// NaN when every replica is empty), `max_batch_formed` is the largest
/// anywhere, and `queue_depth_hwm` is the deepest any single replica
/// queue ever got (per-queue high-water marks peak at different times,
/// so summing them would overstate fleet backlog).
pub(crate) fn merged_report(engines: &[ServeEngine], elapsed_s: f64) -> ServeReport {
    let mut merged: Option<RawStats> = None;
    for e in engines {
        let mut raw = raw_stats(&e.shared);
        raw.workers = e.worker_count;
        merged = Some(match merged {
            None => raw,
            Some(mut acc) => {
                acc.lat.append(&mut raw.lat);
                acc.completed += raw.completed;
                acc.failed += raw.failed;
                acc.deadline_exceeded += raw.deadline_exceeded;
                acc.shed += raw.shed;
                acc.cancelled += raw.cancelled;
                acc.respawns += raw.respawns;
                acc.stalls += raw.stalls;
                acc.stolen += raw.stolen;
                acc.batches += raw.batches;
                acc.batched_requests += raw.batched_requests;
                acc.multi_batches += raw.multi_batches;
                acc.max_batch_formed = acc.max_batch_formed.max(raw.max_batch_formed);
                acc.depth_hwm = acc.depth_hwm.max(raw.depth_hwm);
                acc.workers += raw.workers;
                acc
            }
        });
    }
    let raw = merged.expect("merged_report requires at least one replica");
    let health = aggregate_health(engines.iter().map(ServeEngine::health));
    let (module_batch, arena) = engines
        .first()
        .map(|e| (e.batch, e.module.memory_report().planned_peak_bytes))
        .unwrap_or((0, 0));
    build_report(raw, module_batch, arena, elapsed_s, health)
}

/// Fleet health: the fleet serves as long as *any* replica serves.
/// `Ready` if any replica is ready, else `Draining` if any is draining,
/// else `Starting` if any is starting, else `Stopped`.
pub(crate) fn aggregate_health(states: impl IntoIterator<Item = EngineHealth>) -> EngineHealth {
    let mut agg = EngineHealth::Stopped;
    for h in states {
        match h {
            EngineHealth::Ready => return EngineHealth::Ready,
            EngineHealth::Draining => agg = EngineHealth::Draining,
            EngineHealth::Starting if agg == EngineHealth::Stopped => {
                agg = EngineHealth::Starting;
            }
            _ => {}
        }
    }
    agg
}

/// Wires `engines` together as replicas of one sharded fleet: each
/// engine learns the others' queues so its idle workers can steal queued
/// requests. Call once, right after constructing the replicas (linking
/// is sticky; a second call is a no-op).
pub(crate) fn link_replicas(engines: &[ServeEngine]) {
    for (i, e) in engines.iter().enumerate() {
        let sibs: Vec<Weak<Shared>> = engines
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, o)| Arc::downgrade(&o.shared))
            .collect();
        let _ = e.shared.siblings.set(sibs);
    }
}

/// Construction-failure teardown: stop and join whatever was spawned.
fn abort_startup(shared: &Arc<Shared>) {
    lock(&shared.queue).stopping = true;
    shared.set_health(EngineHealth::Stopped);
    shared.not_empty.notify_all();
    let handles: Vec<JoinHandle<()>> =
        lock(&shared.workers).iter_mut().filter_map(|e| e.handle.take()).collect();
    for h in handles {
        let _ = h.join();
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("workers", &self.worker_count)
            .field("module_batch", &self.batch)
            .field("queue_cap", &self.shared.queue_cap)
            .field("health", &self.shared.health())
            .finish()
    }
}

/// Everything needed to (re)spawn a worker; the watchdog keeps a copy.
#[derive(Clone)]
struct WorkerTemplate {
    module: Arc<Module>,
    shared: Arc<Shared>,
    max_batch: usize,
    batch_timeout: Duration,
    /// Cores workers pin inside (`None` = unbound); worker `w` takes the
    /// `w`-th core, wrapping.
    cores: Option<CoreSet>,
    input_shape: Shape,
    input_layout: Layout,
}

/// One worker thread's identity: the shared template plus its slot in the
/// supervision table and the generation it was spawned as.
struct WorkerCfg {
    template: WorkerTemplate,
    index: usize,
    generation: u64,
}

fn spawn_worker(
    template: &WorkerTemplate,
    index: usize,
    generation: u64,
) -> std::io::Result<JoinHandle<()>> {
    let cfg = WorkerCfg { template: template.clone(), index, generation };
    std::thread::Builder::new()
        .name(format!("neocpu-serve-{index}"))
        .spawn(move || worker_main(&cfg))
}

/// Exit sentinel: clears the worker's `alive` flag (even on unwind) so the
/// watchdog and shutdown observe the death, unless the watchdog already
/// abandoned this generation.
struct WorkerGuard {
    shared: Arc<Shared>,
    index: usize,
    generation: u64,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let mut workers = lock(&self.shared.workers);
        let entry = &mut workers[self.index];
        if entry.generation != self.generation {
            // Abandoned: the entry belongs to a replacement worker now.
            return;
        }
        // Failsafe: slots registered but never resolved (a panic escaped
        // between registration and the outcome handler) must still fail
        // rather than hang their waiters.
        let leftovers: Vec<(Arc<Request>, u64)> = entry.in_flight.drain(..).collect();
        entry.busy_since = None;
        entry.alive = false;
        drop(workers);
        if !leftovers.is_empty() {
            let err = NeoError::WorkerLost {
                worker: self.index,
                reason: "worker exited with unresolved in-flight slots".into(),
            };
            fail_batch(&self.shared, &leftovers, &err);
        }
        self.shared.worker_exited.notify_all();
    }
}

/// The worker: pop live requests → coalesce → stage → run → distribute,
/// until the engine stops or this thread is retired by a fault.
fn worker_main(cfg: &WorkerCfg) {
    let shared = Arc::clone(&cfg.template.shared);
    let _guard =
        WorkerGuard { shared: Arc::clone(&shared), index: cfg.index, generation: cfg.generation };
    // Drill point: a panic here kills the nascent worker before it serves
    // anything; the watchdog's respawn loop must converge past it.
    crate::faults::fire_in_worker(crate::faults::WORKER_SPAWN);
    // Pin inside the engine's core set (best effort — serving must work
    // on hosts without affinity APIs), then read the mask back from the
    // kernel and record what actually took effect.
    let target = cfg.template.cores.as_ref().and_then(|set| set.core_at(cfg.index));
    let bound = target.filter(|&core| affinity::bind_current_thread(core)).and_then(|core| {
        affinity::current_thread_affinity()
            .and_then(|mask| (mask.cores() == [core]).then_some(core))
    });
    {
        let mut workers = lock(&shared.workers);
        let entry = &mut workers[cfg.index];
        if entry.generation == cfg.generation {
            entry.bound_core = bound;
        }
    }
    let mut ctx: RunContext = cfg.template.module.make_context();
    let mut staging = Tensor::zeros(cfg.template.input_shape.clone(), cfg.template.input_layout)
        .expect("module input shape is constructible");
    // Reused per round: holds at most `max_batch` items, so warm rounds
    // never grow it.
    let mut batch: Vec<(Arc<Request>, u64)> = Vec::with_capacity(cfg.template.max_batch.max(1));

    loop {
        batch.clear();
        match panic::catch_unwind(AssertUnwindSafe(|| form_batch(cfg, &mut batch))) {
            Ok(true) => {}
            Ok(false) => return, // stopping and the queue is drained
            Err(payload) => {
                // Requests already popped must not vanish with the thread.
                let err =
                    NeoError::WorkerLost { worker: cfg.index, reason: panic_reason(&*payload) };
                fail_batch(&shared, &batch, &err);
                return; // retire; the watchdog respawns a replacement
            }
        }
        if batch.is_empty() {
            continue;
        }
        if !register_batch(cfg, &batch) {
            // Abandoned while idle (stall misfire); resolve and retire.
            let err = NeoError::WorkerLost { worker: cfg.index, reason: "worker abandoned".into() };
            fail_batch(&shared, &batch, &err);
            return;
        }
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| -> Result<()> {
            crate::faults::fire(crate::faults::BATCHER_WAKEUP)?;
            run_batch(cfg, &mut ctx, &mut staging, &batch);
            Ok(())
        }));
        let abandoned = clear_batch(cfg);
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => fail_batch(&shared, &batch, &e), // contained: keep serving
            Err(payload) => {
                let err =
                    NeoError::WorkerLost { worker: cfg.index, reason: panic_reason(&*payload) };
                fail_batch(&shared, &batch, &err);
                return; // context may be mid-write; respawn gets a fresh one
            }
        }
        if abandoned {
            return;
        }
    }
}

/// Pops queue items (interactive lane first), resolving expired requests
/// (deadline passed, or the deadline-skew drill fired) without executing
/// them, until a live one is found. The returned flag reports whether the
/// item came from the interactive lane. Caller holds the queue lock.
fn pop_live(shared: &Shared, q: &mut QueueInner) -> Option<(Arc<Request>, u64, bool)> {
    loop {
        let (item, interactive) = match q.hi.pop_front() {
            Some(item) => (item, true),
            None => match q.bulk.pop_front() {
                Some(item) => (item, false),
                None => return None,
            },
        };
        let (req, seq) = item;
        shared.not_full.notify_one();
        let deadline = lock(&req.inner).deadline;
        if let Some(d) = deadline {
            let skewed = crate::faults::fire_bool(crate::faults::DEADLINE_SKEW);
            if skewed || Instant::now() >= d {
                if resolve_failure(&req, seq, &NeoError::DeadlineExceeded) {
                    lock(&shared.stats).deadline_exceeded += 1;
                }
                continue;
            }
        }
        return Some((req, seq, interactive));
    }
}

/// How long an idle worker with an empty queue sleeps between steal
/// sweeps over its sibling replicas. Floor for engines whose batch
/// timeout is shorter: sweeping is two try-locks per sibling, but a hot
/// spin here would burn the cores the replicas were partitioned to save.
const STEAL_POLL_FLOOR: Duration = Duration::from_micros(200);

/// Blocks for the first live request, then coalesces up to `max_batch`
/// within `batch_timeout`. Returns `false` when the engine is stopping and
/// the queue is drained (the worker should exit).
///
/// Two scheduling rules live here:
/// * **Work stealing** — when this replica's queue is empty and it has
///   linked siblings, the worker sweeps their queues before sleeping and
///   runs whatever it claims immediately. The sleep between sweeps is
///   bounded so a busy sibling is never ignored for long.
/// * **Latency classes** — a batch that contains an interactive request
///   (one popped from the high-priority lane) is capped at what is
///   already queued: the worker never waits out the batch timeout while
///   holding latency-sensitive work.
fn form_batch(cfg: &WorkerCfg, batch: &mut Vec<(Arc<Request>, u64)>) -> bool {
    let tpl = &cfg.template;
    let can_steal = tpl.shared.siblings.get().is_some_and(|s| !s.is_empty());
    let steal_poll = tpl.batch_timeout.max(STEAL_POLL_FLOOR);
    let mut interactive = false;
    let mut q = lock(&tpl.shared.queue);
    loop {
        if let Some((req, seq, hi)) = pop_live(&tpl.shared, &mut q) {
            interactive |= hi;
            batch.push((req, seq));
            break;
        }
        if q.stopping {
            return false;
        }
        if can_steal {
            // Sweep siblings without holding our own queue lock (at most
            // one queue lock is ever held, so replicas cannot deadlock
            // stealing from each other).
            drop(q);
            if steal_batch(cfg, batch) {
                return true; // stolen work runs immediately
            }
            q = lock(&tpl.shared.queue);
            if q.len() > 0 || q.stopping {
                continue;
            }
            let (guard, _) = tpl
                .shared
                .not_empty
                .wait_timeout(q, steal_poll)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        } else {
            q = tpl.shared.not_empty.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }
    if tpl.max_batch > 1 {
        let deadline = Instant::now() + tpl.batch_timeout;
        while batch.len() < tpl.max_batch {
            if let Some((req, seq, hi)) = pop_live(&tpl.shared, &mut q) {
                interactive |= hi;
                batch.push((req, seq));
                continue;
            }
            if q.stopping || interactive {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = tpl
                .shared
                .not_empty
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
            if timeout.timed_out() && q.len() == 0 {
                break;
            }
        }
    }
    true
}

/// Sweeps sibling replicas' queues, claiming up to `max_batch` live
/// requests into `batch`. Returns whether anything was stolen. Sibling
/// queues are only try-locked: a contended sibling is being served
/// already, so there is nothing worth blocking for.
fn steal_batch(cfg: &WorkerCfg, batch: &mut Vec<(Arc<Request>, u64)>) -> bool {
    let Some(sibs) = cfg.template.shared.siblings.get() else {
        return false;
    };
    for sib in sibs {
        let Some(sib) = sib.upgrade() else { continue };
        let mut sq = match sib.queue.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => continue,
        };
        // A draining sibling keeps its own queue: its drain protocol owns
        // (and accounts for) every remaining item.
        if sq.stopping {
            continue;
        }
        while batch.len() < cfg.template.max_batch {
            // Expiries found while sweeping resolve against the *owning*
            // replica's stats, which is where the request was admitted.
            match pop_live(&sib, &mut sq) {
                Some((req, seq, _)) => batch.push((req, seq)),
                None => break,
            }
        }
        drop(sq);
        if !batch.is_empty() {
            lock(&cfg.template.shared.stats).stolen += batch.len() as u64;
            return true;
        }
    }
    false
}

/// Publishes the formed batch in this worker's supervision entry so the
/// watchdog can fail it if the worker is lost mid-run. Returns `false` if
/// the watchdog already abandoned this worker generation.
fn register_batch(cfg: &WorkerCfg, batch: &[(Arc<Request>, u64)]) -> bool {
    let mut workers = lock(&cfg.template.shared.workers);
    let entry = &mut workers[cfg.index];
    if entry.generation != cfg.generation {
        return false;
    }
    entry.busy_since = Some(Instant::now());
    entry.in_flight.clear();
    for (req, seq) in batch {
        entry.in_flight.push((Arc::clone(req), *seq));
    }
    true
}

/// Clears this worker's in-flight registration after the batch outcome is
/// known. Returns `true` when the watchdog abandoned this generation
/// meanwhile (the entry belongs to a replacement; this thread must exit).
fn clear_batch(cfg: &WorkerCfg) -> bool {
    let mut workers = lock(&cfg.template.shared.workers);
    let entry = &mut workers[cfg.index];
    if entry.generation != cfg.generation {
        return true;
    }
    entry.in_flight.clear();
    entry.busy_since = None;
    false
}

/// Resolves every still-pending request of `batch` with `err` (seq-guarded:
/// requests already resolved elsewhere are untouched).
fn fail_batch(shared: &Shared, batch: &[(Arc<Request>, u64)], err: &NeoError) {
    let mut failed = 0u64;
    for (req, seq) in batch {
        if resolve_failure(req, *seq, err) {
            failed += 1;
        }
    }
    if failed > 0 {
        lock(&shared.stats).failed += failed;
    }
}

/// Executes one formed batch on the worker's context and distributes
/// results to every request still owned by this run.
fn run_batch(
    cfg: &WorkerCfg,
    ctx: &mut RunContext,
    staging: &mut Tensor,
    batch: &[(Arc<Request>, u64)],
) {
    let shared = &cfg.template.shared;
    {
        let mut st = lock(&shared.stats);
        st.batches += 1;
        st.batched_requests += batch.len() as u64;
        if batch.len() > 1 {
            st.multi_batches += 1;
        }
        if batch.len() > st.max_batch_formed {
            st.max_batch_formed = batch.len();
        }
    }

    // Stage request rows into the batched input. Rows past `batch.len()`
    // keep stale (deterministically initialized) data; their results are
    // computed and discarded — the price of a fixed-batch plan.
    for (row, (req, _)) in batch.iter().enumerate() {
        let inner = lock(&req.inner);
        let row_len = inner.input.data().len();
        staging.data_mut()[row * row_len..(row + 1) * row_len].copy_from_slice(inner.input.data());
    }

    match cfg.template.module.run_with(ctx, std::slice::from_ref(staging)) {
        Ok(()) => {
            for (row, (req, seq)) in batch.iter().enumerate() {
                let mut inner = lock(&req.inner);
                // Seq guard: if a racing resolver (watchdog abandonment,
                // drain) already answered this request, its buffers belong
                // to the client again — leave them alone.
                if !matches!(inner.state, SlotState::Queued) || inner.seq != *seq {
                    continue;
                }
                for o in 0..inner.outputs.len() {
                    let src = ctx.output(o).expect("output count validated at engine start");
                    let row_len = inner.outputs[o].data().len();
                    let rows = &src.data()[row * row_len..(row + 1) * row_len];
                    inner.outputs[o].data_mut().copy_from_slice(rows);
                }
                let latency = inner.submitted.elapsed();
                // Record before waking the waiter, so a client that reads
                // `report()` right after `wait()` sees its own completion.
                record_completion(shared, latency);
                inner.state = SlotState::Done;
                drop(inner);
                req.done.notify_all();
            }
        }
        Err(e) => {
            // The panic boundary already contained the failure; every
            // request of this batch degrades, the engine keeps serving.
            fail_batch(shared, batch, &e);
        }
    }
}

/// Records one completed request's latency in the ring (allocation-free
/// past the pre-reserved capacity).
fn record_completion(shared: &Shared, latency: Duration) {
    let mut st = lock(&shared.stats);
    st.completed += 1;
    let us = latency.as_secs_f64() * 1e6;
    if st.latencies_us.len() < st.latencies_us.capacity() {
        st.latencies_us.push(us);
    } else if !st.latencies_us.is_empty() {
        let i = st.ring_next % st.latencies_us.len();
        st.latencies_us[i] = us;
        st.ring_next = st.ring_next.wrapping_add(1);
    }
}

/// Watchdog configuration (owned by the supervisor thread).
struct WatchdogCfg {
    shared: Arc<Shared>,
    template: WorkerTemplate,
    interval: Duration,
    stall_budget: Option<Duration>,
}

/// The supervisor: every tick, abandon stalled workers and respawn dead
/// ones (unless the engine is draining). The tick is allocation-free when
/// nothing is wrong, so it can run while the zero-allocation warm path is
/// being measured.
fn watchdog_loop(cfg: &WatchdogCfg) {
    loop {
        {
            let stop = lock(&cfg.shared.watchdog_stop);
            if *stop {
                return;
            }
            let (stop, _) = cfg
                .shared
                .watchdog_cv
                .wait_timeout(stop, cfg.interval)
                .unwrap_or_else(PoisonError::into_inner);
            if *stop {
                return;
            }
        }
        let respawn_allowed = cfg.shared.health() == EngineHealth::Ready;
        let mut workers = lock(&cfg.shared.workers);
        for (index, entry) in workers.iter_mut().enumerate() {
            // Stall: the batch has exceeded its budget. Abandon the thread
            // (it is past joining — it may never return), fail its slots,
            // and let the respawn below replace it.
            let stalled = entry.alive
                && cfg
                    .stall_budget
                    .is_some_and(|b| entry.busy_since.is_some_and(|t0| t0.elapsed() >= b));
            if stalled {
                let slots: Vec<(Arc<Request>, u64)> = entry.in_flight.drain(..).collect();
                entry.busy_since = None;
                entry.alive = false;
                entry.generation = entry.generation.wrapping_add(1);
                drop(entry.handle.take()); // detach: never join a hung thread
                let err = NeoError::WorkerLost {
                    worker: index,
                    reason: "batch exceeded the stall budget".into(),
                };
                fail_batch(&cfg.shared, &slots, &err);
                lock(&cfg.shared.stats).stalls += 1;
                cfg.shared.worker_exited.notify_all();
            }
            // Death: the exit guard cleared `alive` (the thread is gone or
            // exiting). Join the finished thread, sweep anything the guard
            // could not resolve, and respawn a fresh generation.
            if !entry.alive {
                if let Some(h) = entry.handle.take() {
                    // The guard ran before `alive` cleared, so the thread
                    // is past its last lock acquisition; this join cannot
                    // deadlock and returns promptly.
                    let _ = h.join();
                }
                if !entry.in_flight.is_empty() {
                    let slots: Vec<(Arc<Request>, u64)> = entry.in_flight.drain(..).collect();
                    let err = NeoError::WorkerLost {
                        worker: index,
                        reason: "worker died with unresolved in-flight slots".into(),
                    };
                    fail_batch(&cfg.shared, &slots, &err);
                }
                if respawn_allowed {
                    entry.generation = entry.generation.wrapping_add(1);
                    // A spawn failure (thread exhaustion, or the
                    // worker-spawn drill) leaves the entry dead; the next
                    // tick retries.
                    if let Ok(h) = spawn_worker(&cfg.template, index, entry.generation) {
                        entry.handle = Some(h);
                        entry.alive = true;
                        entry.busy_since = None;
                        lock(&cfg.shared.stats).respawns += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions, CpuTarget, OptLevel, PoolChoice};
    use neocpu_graph::GraphBuilder;

    fn batched_module(batch: usize) -> Arc<Module> {
        let mut b = GraphBuilder::new(11);
        let x = b.input([batch, 4, 8, 8]);
        let c = b.conv_bn_relu(x, 8, 3, 1, 1);
        let p = b.max_pool(c, 2, 2, 0);
        let f = b.flatten(p);
        let d = b.dense(f, 5);
        let s = b.softmax(d);
        let g = b.finish(vec![s]);
        let opts = CompileOptions::level(OptLevel::O2).with_pool(PoolChoice::Sequential);
        Arc::new(compile(&g, &CpuTarget::host(), &opts).unwrap())
    }

    #[test]
    fn serves_requests_and_matches_direct_run() {
        let m = batched_module(2);
        let engine =
            ServeEngine::new(Arc::clone(&m), &ServeOptions { workers: 2, ..Default::default() })
                .unwrap();
        let img = Tensor::random([1, 4, 8, 8], Layout::Nchw, 3, 1.0).unwrap();
        let outs = engine.infer(&img).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].shape().dims(), &[1, 5]);
        assert!(outs[0].data().iter().all(|v| v.is_finite()));

        // Cross-check against a direct batched run with the same image in
        // every row: the served row must be bit-identical.
        let mut stacked = Tensor::zeros([2, 4, 8, 8], Layout::Nchw).unwrap();
        let n = img.data().len();
        stacked.data_mut()[..n].copy_from_slice(img.data());
        let img2 = img.data().to_vec();
        stacked.data_mut()[n..].copy_from_slice(&img2);
        let direct = m.run(std::slice::from_ref(&stacked)).unwrap();
        assert_eq!(outs[0].data(), &direct[0].data()[..outs[0].data().len()]);
        engine.shutdown();
    }

    #[test]
    fn slot_reuse_cycle_works() {
        let m = batched_module(2);
        let engine =
            ServeEngine::new(m, &ServeOptions { workers: 1, ..Default::default() }).unwrap();
        let req = engine.make_request();
        for seed in 0..4 {
            let img = Tensor::random([1, 4, 8, 8], Layout::Nchw, seed, 1.0).unwrap();
            req.fill(&img).unwrap();
            engine.submit(&req).unwrap();
            req.wait().unwrap();
            req.with_outputs(|outs| {
                assert!(outs[0].data().iter().all(|v| v.is_finite()));
            })
            .unwrap();
        }
        let report = engine.report();
        assert_eq!(report.completed, 4);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn rejects_multi_input_modules_and_bad_requests() {
        let mut b = GraphBuilder::new(1);
        let x = b.input([1, 4, 8, 8]);
        let y = b.input([1, 4, 8, 8]);
        let a = b.add(x, y);
        let g = b.finish(vec![a]);
        let opts = CompileOptions::level(OptLevel::O0).with_pool(PoolChoice::Sequential);
        let m = Arc::new(compile(&g, &CpuTarget::host(), &opts).unwrap());
        let err = ServeEngine::new(m, &ServeOptions::default()).unwrap_err();
        assert!(matches!(err, NeoError::Serve(_)), "unexpected: {err}");

        // Requests from one engine are rejected by another.
        let e1 = ServeEngine::new(batched_module(2), &ServeOptions::default()).unwrap();
        let e2 = ServeEngine::new(batched_module(2), &ServeOptions::default()).unwrap();
        let req = e1.make_request();
        let err = e2.submit(&req).unwrap_err();
        assert!(matches!(err, NeoError::Serve(_)), "unexpected: {err}");

        // Wrong-shape fill is rejected.
        let bad = Tensor::zeros([1, 4, 9, 9], Layout::Nchw).unwrap();
        assert!(req.fill(&bad).is_err());
    }

    #[test]
    fn invalid_options_are_rejected_with_config_errors() {
        let m = batched_module(2);
        for opts in [
            ServeOptions { workers: 0, ..Default::default() },
            ServeOptions { queue_cap: 0, ..Default::default() },
            ServeOptions { latency_capacity: 0, ..Default::default() },
            ServeOptions { watchdog_interval: Duration::ZERO, ..Default::default() },
            ServeOptions { stall_budget: Some(Duration::ZERO), ..Default::default() },
            ServeOptions { default_deadline: Some(Duration::ZERO), ..Default::default() },
        ] {
            let err = ServeEngine::new(Arc::clone(&m), &opts).unwrap_err();
            assert!(matches!(err, NeoError::Config(_)), "expected Config error, got {err}");
        }
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let engine = ServeEngine::new(batched_module(2), &ServeOptions::default()).unwrap();
        let req = engine.make_request();
        assert_eq!(engine.health(), EngineHealth::Ready);
        engine.shutdown();
        assert_eq!(engine.health(), EngineHealth::Stopped);
        let err = engine.submit(&req).unwrap_err();
        assert!(matches!(err, NeoError::Shutdown), "unexpected: {err}");
        let err = engine.try_submit(&req).unwrap_err();
        assert!(matches!(err, NeoError::Shutdown), "unexpected: {err}");
        // The failed submit left the slot reusable (not stuck in flight).
        assert!(req.fill(&Tensor::zeros([1, 4, 8, 8], Layout::Nchw).unwrap()).is_ok());
    }

    #[test]
    fn report_percentiles_are_well_defined_on_tiny_and_empty_samples() {
        let engine = ServeEngine::new(batched_module(2), &ServeOptions::default()).unwrap();
        // No samples: percentiles are NaN, not a bogus 0 ms.
        let empty = engine.report();
        assert_eq!(empty.latency_samples, 0);
        assert!(empty.p50_ms.is_nan() && empty.p95_ms.is_nan() && empty.p99_ms.is_nan());

        // One sample: every percentile is that sample.
        let img = Tensor::random([1, 4, 8, 8], Layout::Nchw, 3, 1.0).unwrap();
        engine.infer(&img).unwrap();
        let one = engine.report();
        assert_eq!(one.latency_samples, 1);
        assert!(one.p50_ms > 0.0);
        assert_eq!(one.p50_ms, one.p95_ms);
        assert_eq!(one.p95_ms, one.p99_ms);
        engine.shutdown();
    }

    #[test]
    fn expired_request_is_never_executed() {
        let engine = ServeEngine::new(batched_module(2), &ServeOptions::default()).unwrap();
        let req = engine.make_request();
        let img = Tensor::random([1, 4, 8, 8], Layout::Nchw, 5, 1.0).unwrap();
        // A 1 ns budget has always expired by the time a worker pops the
        // request: the batcher must resolve, not run it.
        req.fill_with_deadline(&img, Duration::from_nanos(1)).unwrap();
        engine.submit(&req).unwrap();
        let err = req.wait().unwrap_err();
        assert!(matches!(err, NeoError::DeadlineExceeded), "unexpected: {err}");
        let r = engine.report();
        assert_eq!(r.completed, 0, "an expired request must never execute: {r}");
        assert_eq!(r.deadline_exceeded, 1);

        // The slot is reusable, and a fresh fill clears the deadline.
        req.fill(&img).unwrap();
        engine.submit(&req).unwrap();
        req.wait().unwrap();
        engine.shutdown();
    }
}
