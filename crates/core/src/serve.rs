//! Throughput-serving engine: concurrent, batched inference over pooled
//! [`RunContext`]s.
//!
//! [`Module::run`] serves one request at a time; nothing in the stack
//! drives the zero-allocation context machinery concurrently or at
//! batch > 1. This module closes that gap with a classic serving front end
//! layered on the arena executor:
//!
//! ```text
//!  clients ──submit──▶ bounded queue ──▶ dynamic batcher ──▶ workers
//!  (N threads)         (Mutex+Condvar,    (coalesce up to     (1 RunContext
//!                       backpressure)      B or timeout)       each, affine)
//! ```
//!
//! * Every worker owns a pre-built [`RunContext`] plus a staging input
//!   tensor, both allocated once at engine start — a warm request costs
//!   **zero heap allocations** end to end: submit pushes an `Arc` clone
//!   into a pre-reserved `VecDeque`, the worker memcpys request rows into
//!   its staging tensor, runs [`Module::run_with`] (allocation-free by the
//!   executor's contract), and memcpys each output row back into the
//!   request's pre-allocated buffers.
//! * The **dynamic batcher** coalesces queued requests into one batched
//!   run: a worker takes the first request, then waits up to
//!   [`ServeOptions::batch_timeout`] for more, up to the module's batch
//!   size. Under load batches fill instantly; at low load the timeout
//!   bounds added latency.
//! * **Fault containment** comes from the executor's per-node panic
//!   boundary: a kernel panic or error fails the requests of that batch
//!   with a typed [`NeoError`] — the worker, its context, and the engine
//!   keep serving.
//! * Workers bind to distinct cores via `neocpu-threadpool`'s affinity
//!   helper (best effort; see [`ServeOptions::bind_workers`]).
//!
//! The module executed by the engine should usually be compiled
//! single-threaded (`PoolChoice::Sequential`): the engine's workers are
//! the parallelism, one inference per core, which is the throughput-optimal
//! arrangement when requests outnumber cores (cf. the paper's §3.1.2 pool,
//! which optimizes the *latency* of one inference instead).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use neocpu_tensor::{Layout, Shape, Tensor};
use neocpu_threadpool::affinity;

use crate::executor::{Module, RunContext};
use crate::{NeoError, Result};

/// Configuration of a [`ServeEngine`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads, each owning one [`RunContext`] (≥ 1).
    pub workers: usize,
    /// Upper bound on requests coalesced into one batched run. Clamped to
    /// the module's compiled batch size; `0` means "the module's batch".
    pub max_batch: usize,
    /// How long a worker holding a partial batch waits for more requests
    /// before running it anyway.
    pub batch_timeout: Duration,
    /// Bounded submission-queue capacity; a full queue blocks `submit`
    /// (backpressure) until a worker drains it.
    pub queue_cap: usize,
    /// Pin worker `w` to core `w % cores` (best effort, Linux only).
    pub bind_workers: bool,
    /// Latency samples retained for percentile reporting; older samples
    /// are overwritten ring-style so the warm path never reallocates.
    pub latency_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 0,
            batch_timeout: Duration::from_millis(1),
            queue_cap: 256,
            bind_workers: true,
            latency_capacity: 65_536,
        }
    }
}

/// State of a request slot.
enum SlotState {
    /// Not submitted (or reset by [`Request::fill`] for reuse).
    Idle,
    /// In the queue or executing; the slot's buffers belong to the engine.
    Queued,
    /// Completed; outputs are valid.
    Done,
    /// The batch this request rode in failed with this error.
    Failed(NeoError),
}

/// Everything a request owns, under one lock.
struct SlotInner {
    state: SlotState,
    /// Caller-filled single-image input (leading dim 1).
    input: Tensor,
    /// One single-image buffer per module output, filled on completion.
    outputs: Vec<Tensor>,
    /// Submission timestamp, for queue-to-completion latency.
    submitted: Instant,
}

/// A reusable request slot: one in-flight inference.
///
/// Created by [`ServeEngine::make_request`] with all buffers
/// pre-allocated; the fill → submit → wait → read cycle performs no heap
/// allocations, so a client looping on one slot preserves the arena
/// executor's zero-allocation warm path end to end.
///
/// A slot may be reused (fill again after `wait` returns) but not aliased:
/// submitting a slot that is already in flight is an error.
pub struct Request {
    module_uid: u64,
    inner: Mutex<SlotInner>,
    done: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Request {
    /// Copies `data` into the slot's input buffer, resetting the slot for
    /// (re-)submission.
    ///
    /// # Errors
    ///
    /// Rejects an in-flight slot and shape/layout mismatches.
    pub fn fill(&self, data: &Tensor) -> Result<()> {
        let mut inner = lock(&self.inner);
        if matches!(inner.state, SlotState::Queued) {
            return Err(NeoError::Serve("cannot fill a request that is in flight".into()));
        }
        if data.shape().dims() != inner.input.shape().dims()
            || data.layout() != inner.input.layout()
        {
            return Err(NeoError::BadInput(format!(
                "request input must be {} {}, got {} {}",
                inner.input.shape(),
                inner.input.layout(),
                data.shape(),
                data.layout()
            )));
        }
        inner.input.data_mut().copy_from_slice(data.data());
        inner.state = SlotState::Idle;
        Ok(())
    }

    /// Blocks until the request completes (or fails).
    ///
    /// # Errors
    ///
    /// Returns the typed execution error when the request's batch failed,
    /// or a protocol error for a slot that was never submitted.
    pub fn wait(&self) -> Result<()> {
        let mut inner = lock(&self.inner);
        while matches!(inner.state, SlotState::Queued) {
            inner = self.done.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
        match &inner.state {
            SlotState::Done => Ok(()),
            SlotState::Failed(e) => Err(e.clone()),
            SlotState::Idle | SlotState::Queued => {
                Err(NeoError::Serve("request was not submitted".into()))
            }
        }
    }

    /// Reads the completed outputs without copying: `f` runs under the
    /// slot lock with the single-image output tensors.
    ///
    /// # Errors
    ///
    /// Returns the request's failure, or a protocol error when no
    /// completed result is available.
    pub fn with_outputs<R>(&self, f: impl FnOnce(&[Tensor]) -> R) -> Result<R> {
        let inner = lock(&self.inner);
        match &inner.state {
            SlotState::Done => Ok(f(&inner.outputs)),
            SlotState::Failed(e) => Err(e.clone()),
            SlotState::Idle | SlotState::Queued => {
                Err(NeoError::Serve("request has no completed result".into()))
            }
        }
    }

    /// Detached copy of completed output `i`.
    ///
    /// # Errors
    ///
    /// As [`Request::with_outputs`]; also rejects an out-of-range index.
    pub fn output(&self, i: usize) -> Result<Tensor> {
        self.with_outputs(|outs| outs.get(i).cloned())?
            .ok_or_else(|| NeoError::Serve(format!("request has no output #{i}")))
    }
}

/// The bounded submission queue plus its synchronization.
struct QueueInner {
    items: VecDeque<Arc<Request>>,
    stopping: bool,
    depth_hwm: usize,
}

/// Aggregate counters and the latency ring, under one lock (touched once
/// per request/batch — cheap next to an inference).
struct ServeStats {
    /// Queue-to-completion latencies, µs; ring-overwritten past capacity.
    latencies_us: Vec<f64>,
    ring_next: usize,
    completed: u64,
    failed: u64,
    batches: u64,
    batched_requests: u64,
    multi_batches: u64,
    max_batch_formed: usize,
}

/// State shared between the engine handle and its workers.
struct Shared {
    queue: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    queue_cap: usize,
    stats: Mutex<ServeStats>,
}

/// Point-in-time serving statistics (see [`ServeEngine::report`]).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests failed (their batch's execution errored or panicked).
    pub failed: u64,
    /// Batched runs executed.
    pub batches: u64,
    /// Batches that coalesced more than one request.
    pub multi_batches: u64,
    /// Mean formed batch size (requests per run).
    pub mean_batch: f64,
    /// Largest batch formed.
    pub max_batch_formed: usize,
    /// Submission-queue depth high-water mark.
    pub queue_depth_hwm: usize,
    /// Median queue-to-completion latency, ms (over retained samples).
    pub p50_ms: f64,
    /// 95th-percentile latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// Worker threads serving the engine.
    pub workers: usize,
    /// The module's compiled batch size B.
    pub module_batch: usize,
    /// Arena bytes of one pooled context (× `workers` = pool total).
    pub arena_bytes_per_context: usize,
    /// Wall time since the engine started, seconds.
    pub elapsed_s: f64,
}

impl ServeReport {
    /// Completed images per second over the engine's lifetime.
    pub fn images_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.completed as f64 / self.elapsed_s
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ok / {} failed in {:.2}s ({:.1} img/s) | {} batches (mean {:.2}, max {}, >1: {}) \
             | queue hwm {} | p50 {:.2} ms p95 {:.2} ms p99 {:.2} ms | {} workers × {} KiB arena",
            self.completed,
            self.failed,
            self.elapsed_s,
            self.images_per_sec(),
            self.batches,
            self.mean_batch,
            self.max_batch_formed,
            self.multi_batches,
            self.queue_depth_hwm,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.workers,
            self.arena_bytes_per_context / 1024,
        )
    }
}

/// The serving engine: owns the queue, the batcher, and the worker pool.
///
/// Dropping the engine shuts it down: the queue is drained, workers join.
pub struct ServeEngine {
    module: Arc<Module>,
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    batch: usize,
    image_shape: Shape,
    input_layout: Layout,
    out_row_shapes: Vec<Shape>,
    out_layouts: Vec<Layout>,
    started: Instant,
}

impl ServeEngine {
    /// Starts an engine over `module` with `opts`.
    ///
    /// The module must have exactly one graph input; every output's
    /// leading dimension must equal the input's batch size B, so the
    /// engine can slice per-request rows out of a batched run.
    ///
    /// # Errors
    ///
    /// Returns [`NeoError::Serve`] when the module's signature cannot be
    /// served (multi-input, non-batched outputs) or `opts.workers == 0`.
    pub fn new(module: Arc<Module>, opts: &ServeOptions) -> Result<Self> {
        if opts.workers == 0 {
            return Err(NeoError::Serve("engine needs at least one worker".into()));
        }
        let input_shapes = module.input_shapes();
        let [input_shape] = input_shapes.as_slice() else {
            return Err(NeoError::Serve(format!(
                "batched serving requires exactly one graph input, module has {}",
                input_shapes.len()
            )));
        };
        let batch = input_shape.dims().first().copied().unwrap_or(1).max(1);
        let out_shapes = module.output_shapes();
        for (i, s) in out_shapes.iter().enumerate() {
            if s.dims().first().copied().unwrap_or(0) != batch {
                return Err(NeoError::Serve(format!(
                    "output #{i} has shape {s}; leading dim must equal the input batch {batch} \
                     so per-request rows can be sliced out"
                )));
            }
        }
        let mut image_dims = input_shape.dims().to_vec();
        image_dims[0] = 1;
        let image_shape = Shape::new(image_dims);
        let input_layout = module.input_layouts()[0];
        let out_layouts = module.output_layouts();
        let out_row_shapes: Vec<Shape> = out_shapes
            .iter()
            .map(|s| {
                let mut d = s.dims().to_vec();
                d[0] = 1;
                Shape::new(d)
            })
            .collect();

        let max_batch = if opts.max_batch == 0 { batch } else { opts.max_batch.min(batch) };
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(opts.queue_cap.max(1)),
                stopping: false,
                depth_hwm: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_cap: opts.queue_cap.max(1),
            stats: Mutex::new(ServeStats {
                latencies_us: Vec::with_capacity(opts.latency_capacity),
                ring_next: 0,
                completed: 0,
                failed: 0,
                batches: 0,
                batched_requests: 0,
                multi_batches: 0,
                max_batch_formed: 0,
            }),
        });

        let mut handles = Vec::with_capacity(opts.workers);
        for w in 0..opts.workers {
            let cfg = WorkerCfg {
                module: Arc::clone(&module),
                shared: Arc::clone(&shared),
                index: w,
                max_batch,
                batch_timeout: opts.batch_timeout,
                bind: opts.bind_workers,
                input_shape: input_shape.clone(),
                input_layout,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("neocpu-serve-{w}"))
                    .spawn(move || worker_loop(cfg))
                    .map_err(|e| NeoError::Serve(format!("failed to spawn worker: {e}")))?,
            );
        }

        Ok(Self {
            module,
            shared,
            workers: Mutex::new(handles),
            worker_count: opts.workers,
            batch,
            image_shape,
            input_layout,
            out_row_shapes,
            out_layouts,
            started: Instant::now(),
        })
    }

    /// The module's compiled batch size B (the batcher's ceiling).
    pub fn module_batch(&self) -> usize {
        self.batch
    }

    /// Creates a request slot with pre-allocated input/output buffers.
    ///
    /// This is the only allocating step of a client's steady state:
    /// allocate one slot per concurrent request, then loop
    /// fill → submit → wait on it allocation-free.
    pub fn make_request(&self) -> Arc<Request> {
        let input = Tensor::zeros(self.image_shape.clone(), self.input_layout)
            .expect("image shape was validated at engine construction");
        let outputs = self
            .out_row_shapes
            .iter()
            .zip(&self.out_layouts)
            .map(|(s, &l)| {
                Tensor::zeros(s.clone(), l).expect("output row shape mirrors a planned value")
            })
            .collect();
        Arc::new(Request {
            module_uid: self.module.uid(),
            inner: Mutex::new(SlotInner {
                state: SlotState::Idle,
                input,
                outputs,
                submitted: Instant::now(),
            }),
            done: Condvar::new(),
        })
    }

    /// Enqueues a filled request slot; blocks while the queue is full
    /// (backpressure). Returns as soon as the request is queued — pair
    /// with [`Request::wait`].
    ///
    /// # Errors
    ///
    /// Rejects requests made by another engine's module, slots already in
    /// flight, and submissions to a stopped engine.
    pub fn submit(&self, req: &Arc<Request>) -> Result<()> {
        if req.module_uid != self.module.uid() {
            return Err(NeoError::Serve("request belongs to a different engine".into()));
        }
        {
            let mut inner = lock(&req.inner);
            if matches!(inner.state, SlotState::Queued) {
                return Err(NeoError::Serve("request is already in flight".into()));
            }
            inner.state = SlotState::Queued;
            inner.submitted = Instant::now();
        }
        let mut q = lock(&self.shared.queue);
        while !q.stopping && q.items.len() >= self.shared.queue_cap {
            q = self.shared.not_full.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
        if q.stopping {
            drop(q);
            lock(&req.inner).state = SlotState::Idle;
            return Err(NeoError::Serve("engine is shut down".into()));
        }
        q.items.push_back(Arc::clone(req));
        if q.items.len() > q.depth_hwm {
            q.depth_hwm = q.items.len();
        }
        drop(q);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// One-shot convenience: fill a fresh slot, submit, wait, and return
    /// detached output copies. Allocates per call — latency/throughput
    /// loops should hold their own slot instead.
    ///
    /// # Errors
    ///
    /// Propagates submit/execution failures.
    pub fn infer(&self, input: &Tensor) -> Result<Vec<Tensor>> {
        let req = self.make_request();
        req.fill(input)?;
        self.submit(&req)?;
        req.wait()?;
        req.with_outputs(|outs| outs.to_vec())
    }

    /// Snapshot of the engine's serving statistics.
    pub fn report(&self) -> ServeReport {
        let (depth_hwm, st) = {
            let q = lock(&self.shared.queue);
            let hwm = q.depth_hwm;
            drop(q);
            let st = lock(&self.shared.stats);
            (
                hwm,
                (
                    st.latencies_us.clone(),
                    st.completed,
                    st.failed,
                    st.batches,
                    st.batched_requests,
                    st.multi_batches,
                    st.max_batch_formed,
                ),
            )
        };
        let (mut lat, completed, failed, batches, batched_requests, multi, max_formed) = st;
        lat.sort_by(f64::total_cmp);
        let pct = |p: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            let idx = ((p / 100.0) * (lat.len() - 1) as f64).round() as usize;
            lat[idx.min(lat.len() - 1)] / 1e3
        };
        ServeReport {
            completed,
            failed,
            batches,
            multi_batches: multi,
            mean_batch: if batches > 0 { batched_requests as f64 / batches as f64 } else { 0.0 },
            max_batch_formed: max_formed,
            queue_depth_hwm: depth_hwm,
            p50_ms: pct(50.0),
            p95_ms: pct(95.0),
            p99_ms: pct(99.0),
            workers: self.worker_count,
            module_batch: self.batch,
            arena_bytes_per_context: self.module.memory_report().planned_peak_bytes,
            elapsed_s: self.started.elapsed().as_secs_f64(),
        }
    }

    /// Stops the engine: in-queue requests are drained and answered, then
    /// workers exit and are joined. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut q = lock(&self.shared.queue);
            q.stopping = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        let handles = std::mem::take(&mut *lock(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("workers", &self.worker_count)
            .field("module_batch", &self.batch)
            .field("queue_cap", &self.shared.queue_cap)
            .finish()
    }
}

/// Everything one worker thread needs, moved into its closure.
struct WorkerCfg {
    module: Arc<Module>,
    shared: Arc<Shared>,
    index: usize,
    max_batch: usize,
    batch_timeout: Duration,
    bind: bool,
    input_shape: Shape,
    input_layout: Layout,
}

/// The worker: pop → coalesce → stage → run → distribute, forever.
fn worker_loop(cfg: WorkerCfg) {
    if cfg.bind {
        let cores = affinity::available_cores().max(1);
        // Best effort — serving must work on hosts without affinity APIs.
        let _ = affinity::bind_current_thread(cfg.index % cores);
    }
    let mut ctx: RunContext = cfg.module.make_context();
    let mut staging = Tensor::zeros(cfg.input_shape.clone(), cfg.input_layout)
        .expect("module input shape is constructible");
    // Reused per round: holds at most `max_batch` Arc clones, so warm
    // rounds never grow it.
    let mut batch: Vec<Arc<Request>> = Vec::with_capacity(cfg.max_batch.max(1));

    loop {
        batch.clear();
        {
            let mut q = lock(&cfg.shared.queue);
            // Block for the first request (or drain-and-exit on shutdown).
            loop {
                if let Some(r) = q.items.pop_front() {
                    batch.push(r);
                    cfg.shared.not_full.notify_one();
                    break;
                }
                if q.stopping {
                    return;
                }
                q = cfg.shared.not_empty.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
            // Dynamic batcher: coalesce up to `max_batch`, waiting at most
            // `batch_timeout` past the first request.
            if cfg.max_batch > 1 {
                let deadline = Instant::now() + cfg.batch_timeout;
                while batch.len() < cfg.max_batch {
                    if let Some(r) = q.items.pop_front() {
                        batch.push(r);
                        cfg.shared.not_full.notify_one();
                        continue;
                    }
                    if q.stopping {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) = cfg
                        .shared
                        .not_empty
                        .wait_timeout(q, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    q = guard;
                    if timeout.timed_out() && q.items.is_empty() {
                        break;
                    }
                }
            }
        }

        run_batch(&cfg, &mut ctx, &mut staging, &batch);
    }
}

/// Executes one formed batch on the worker's context and distributes
/// results (or the shared failure) to every request in it.
fn run_batch(cfg: &WorkerCfg, ctx: &mut RunContext, staging: &mut Tensor, batch: &[Arc<Request>]) {
    {
        let mut st = lock(&cfg.shared.stats);
        st.batches += 1;
        st.batched_requests += batch.len() as u64;
        if batch.len() > 1 {
            st.multi_batches += 1;
        }
        if batch.len() > st.max_batch_formed {
            st.max_batch_formed = batch.len();
        }
    }

    // Stage request rows into the batched input. Rows past `batch.len()`
    // keep stale (deterministically initialized) data; their results are
    // computed and discarded — the price of a fixed-batch plan.
    for (row, req) in batch.iter().enumerate() {
        let inner = lock(&req.inner);
        let row_len = inner.input.data().len();
        staging.data_mut()[row * row_len..(row + 1) * row_len].copy_from_slice(inner.input.data());
    }

    match cfg.module.run_with(ctx, std::slice::from_ref(staging)) {
        Ok(()) => {
            for (row, req) in batch.iter().enumerate() {
                let mut inner = lock(&req.inner);
                for o in 0..inner.outputs.len() {
                    let src = ctx.output(o).expect("output count validated at engine start");
                    let row_len = inner.outputs[o].data().len();
                    let rows = &src.data()[row * row_len..(row + 1) * row_len];
                    inner.outputs[o].data_mut().copy_from_slice(rows);
                }
                let latency = inner.submitted.elapsed();
                // Record before waking the waiter, so a client that reads
                // `report()` right after `wait()` sees its own completion.
                record_completion(&cfg.shared, latency);
                inner.state = SlotState::Done;
                drop(inner);
                req.done.notify_all();
            }
        }
        Err(e) => {
            // The panic boundary already contained the failure; every
            // request of this batch degrades, the engine keeps serving.
            lock(&cfg.shared.stats).failed += batch.len() as u64;
            for req in batch {
                let mut inner = lock(&req.inner);
                inner.state = SlotState::Failed(e.clone());
                drop(inner);
                req.done.notify_all();
            }
        }
    }
}

/// Records one completed request's latency in the ring (allocation-free
/// past the pre-reserved capacity).
fn record_completion(shared: &Shared, latency: Duration) {
    let mut st = lock(&shared.stats);
    st.completed += 1;
    let us = latency.as_secs_f64() * 1e6;
    if st.latencies_us.len() < st.latencies_us.capacity() {
        st.latencies_us.push(us);
    } else if !st.latencies_us.is_empty() {
        let i = st.ring_next % st.latencies_us.len();
        st.latencies_us[i] = us;
        st.ring_next = st.ring_next.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions, CpuTarget, OptLevel, PoolChoice};
    use neocpu_graph::GraphBuilder;

    fn batched_module(batch: usize) -> Arc<Module> {
        let mut b = GraphBuilder::new(11);
        let x = b.input([batch, 4, 8, 8]);
        let c = b.conv_bn_relu(x, 8, 3, 1, 1);
        let p = b.max_pool(c, 2, 2, 0);
        let f = b.flatten(p);
        let d = b.dense(f, 5);
        let s = b.softmax(d);
        let g = b.finish(vec![s]);
        let opts = CompileOptions::level(OptLevel::O2).with_pool(PoolChoice::Sequential);
        Arc::new(compile(&g, &CpuTarget::host(), &opts).unwrap())
    }

    #[test]
    fn serves_requests_and_matches_direct_run() {
        let m = batched_module(2);
        let engine =
            ServeEngine::new(Arc::clone(&m), &ServeOptions { workers: 2, ..Default::default() })
                .unwrap();
        let img = Tensor::random([1, 4, 8, 8], Layout::Nchw, 3, 1.0).unwrap();
        let outs = engine.infer(&img).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].shape().dims(), &[1, 5]);
        assert!(outs[0].data().iter().all(|v| v.is_finite()));

        // Cross-check against a direct batched run with the same image in
        // every row: the served row must be bit-identical.
        let mut stacked = Tensor::zeros([2, 4, 8, 8], Layout::Nchw).unwrap();
        let n = img.data().len();
        stacked.data_mut()[..n].copy_from_slice(img.data());
        let img2 = img.data().to_vec();
        stacked.data_mut()[n..].copy_from_slice(&img2);
        let direct = m.run(std::slice::from_ref(&stacked)).unwrap();
        assert_eq!(outs[0].data(), &direct[0].data()[..outs[0].data().len()]);
        engine.shutdown();
    }

    #[test]
    fn slot_reuse_cycle_works() {
        let m = batched_module(2);
        let engine = ServeEngine::new(m, &ServeOptions { workers: 1, ..Default::default() })
            .unwrap();
        let req = engine.make_request();
        for seed in 0..4 {
            let img = Tensor::random([1, 4, 8, 8], Layout::Nchw, seed, 1.0).unwrap();
            req.fill(&img).unwrap();
            engine.submit(&req).unwrap();
            req.wait().unwrap();
            req.with_outputs(|outs| {
                assert!(outs[0].data().iter().all(|v| v.is_finite()));
            })
            .unwrap();
        }
        let report = engine.report();
        assert_eq!(report.completed, 4);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn rejects_multi_input_modules_and_bad_requests() {
        let mut b = GraphBuilder::new(1);
        let x = b.input([1, 4, 8, 8]);
        let y = b.input([1, 4, 8, 8]);
        let a = b.add(x, y);
        let g = b.finish(vec![a]);
        let opts = CompileOptions::level(OptLevel::O0).with_pool(PoolChoice::Sequential);
        let m = Arc::new(compile(&g, &CpuTarget::host(), &opts).unwrap());
        let err = ServeEngine::new(m, &ServeOptions::default()).unwrap_err();
        assert!(matches!(err, NeoError::Serve(_)), "unexpected: {err}");

        // Requests from one engine are rejected by another.
        let e1 = ServeEngine::new(batched_module(2), &ServeOptions::default()).unwrap();
        let e2 = ServeEngine::new(batched_module(2), &ServeOptions::default()).unwrap();
        let req = e1.make_request();
        let err = e2.submit(&req).unwrap_err();
        assert!(matches!(err, NeoError::Serve(_)), "unexpected: {err}");

        // Wrong-shape fill is rejected.
        let bad = Tensor::zeros([1, 4, 9, 9], Layout::Nchw).unwrap();
        assert!(req.fill(&bad).is_err());
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let engine =
            ServeEngine::new(batched_module(2), &ServeOptions::default()).unwrap();
        let req = engine.make_request();
        engine.shutdown();
        let err = engine.submit(&req).unwrap_err();
        assert!(matches!(err, NeoError::Serve(_)), "unexpected: {err}");
        // The failed submit left the slot reusable (not stuck in flight).
        assert!(req.fill(&Tensor::zeros([1, 4, 8, 8], Layout::Nchw).unwrap()).is_ok());
    }
}
