//! Post-training int8 quantization (compile-time pass).
//!
//! The int8 path replaces eligible scheduled convolutions with their
//! `u8 × i8 → i32` quad-packed kernels:
//!
//! 1. **Calibration** — the planned graph is compiled to an f32 module and
//!    run over calibration inputs with a probe that records the min/max of
//!    every quantized conv's input tensor. Activation scale and zero point
//!    come from that range (asymmetric, zero always representable).
//! 2. **Rewrite** — each eligible conv gets a memoized [`Op::Quantize`]
//!    node spliced onto its data input, its weights re-packed to symmetric
//!    per-out-channel i8 ([`Layout `]`::OihwIo4` dense, `OIHW1i[x]o`
//!    depthwise), its bias folded with the compile-time zero-point
//!    correction `bias − m·zp·Σw_q`, and a per-out-channel multiplier
//!    parameter `m[oc] = s_in · s_w[oc]` attached via
//!    [`QuantInfo`]. Eligibility is the kernel's quad-packing rule plus an
//!    analytical profit test, so 3-channel stems and other
//!    vectorization-hostile workloads stay f32 per layer.
//! 3. **Accuracy gate** — the quantized module's outputs are compared to
//!    the f32 module's on the calibration set; if the max abs error
//!    exceeds the budget, compilation *falls back to the f32 module* and
//!    reports it, instead of shipping a module that fails accuracy.
//!
//! The whole pass is per-layer: a model compiles into a mix of int8 and
//! f32 convs, with dtype chosen per workload by the same search that
//! chooses blocking factors (see `plan_stage` with `int8 = true`).

use std::collections::HashMap;

use neocpu_graph::{Graph, Node, NodeId, Op, QuantInfo};
use neocpu_kernels::quantize::{quantize_dense_weights, quantize_dw_weights, QuantizedWeights};
use neocpu_search::{CostModel, SchemeDatabase};
use neocpu_tensor::{Layout, Tensor};

use crate::compile::{finish_module, plan_stage, CompileOptions, CompileReport};
use crate::executor::Module;
use crate::target::CpuTarget;
use crate::{NeoError, Result};

/// Default whole-model max-abs-error budget for the int8 accuracy gate,
/// measured against the f32 module's outputs on the calibration set.
///
/// Classification heads end in softmax, so outputs are probabilities and
/// an absolute tolerance is meaningful across models; feature-map outputs
/// of headless graphs are noisier, and callers with such graphs should set
/// their own budget in [`QuantizeOptions`].
pub const DEFAULT_INT8_ERROR_BUDGET: f32 = 0.05;

/// Options for [`compile_quantized`].
#[derive(Debug, Clone)]
pub struct QuantizeOptions {
    /// Max abs error allowed between quantized and f32 outputs on the
    /// calibration set before the compile falls back to f32.
    pub error_budget: f32,
    /// Calibration input sets (one `Vec<Tensor>` per inference). Empty
    /// means "generate [`QuantizeOptions::auto_runs`] deterministic random
    /// sets from the graph's input shapes".
    pub calibration: Vec<Vec<Tensor>>,
    /// Number of auto-generated calibration runs when none are supplied.
    pub auto_runs: usize,
    /// Seed for auto-generated calibration inputs.
    pub seed: u64,
}

impl Default for QuantizeOptions {
    fn default() -> Self {
        Self {
            error_budget: DEFAULT_INT8_ERROR_BUDGET,
            calibration: Vec::new(),
            auto_runs: 2,
            seed: 0x0ff5e7,
        }
    }
}

/// What the quantization pass did to one compile.
#[derive(Debug, Clone, Default)]
pub struct QuantizeReport {
    /// Scheduled convs now running the int8 kernels.
    pub quantized: usize,
    /// Scheduled convs kept on f32 (ineligible or unprofitable).
    pub skipped: usize,
    /// Max abs output error vs. the f32 module on the calibration set.
    pub max_abs_error: f32,
    /// Whether the accuracy gate rejected the quantized module and the
    /// returned module is the f32 one.
    pub fell_back: bool,
    /// The underlying compile diagnostics (dropped schemes, fallbacks,
    /// memory plan of the returned module).
    pub compile: CompileReport,
}

/// Compiles `graph` with the int8 quantization pass, using a throwaway
/// scheme database.
///
/// # Errors
///
/// Returns an error if the graph is invalid or a pass fails. An accuracy
/// budget violation is *not* an error — the f32 module is returned with
/// [`QuantizeReport::fell_back`] set.
pub fn compile_quantized(
    graph: &Graph,
    target: &CpuTarget,
    opts: &CompileOptions,
    qopts: &QuantizeOptions,
) -> Result<(Module, QuantizeReport)> {
    let mut db = SchemeDatabase::new();
    compile_quantized_with_db(graph, target, opts, qopts, &mut db)
}

/// Compiles `graph` with the int8 quantization pass, reading/writing
/// schedule candidates (both f32 and `d`-suffixed int8 entries) in `db`.
///
/// # Errors
///
/// See [`compile_quantized`].
pub fn compile_quantized_with_db(
    graph: &Graph,
    target: &CpuTarget,
    opts: &CompileOptions,
    qopts: &QuantizeOptions,
    db: &mut SchemeDatabase,
) -> Result<(Module, QuantizeReport)> {
    let mut report = CompileReport::default();
    let planned = plan_stage(graph, target, opts, db, &mut report, true)?;
    let f32_module = finish_module(&planned, target, opts, &mut report)?;

    let calib: Vec<Vec<Tensor>> = if qopts.calibration.is_empty() {
        auto_calibration(graph, qopts)?
    } else {
        qopts.calibration.clone()
    };
    if calib.is_empty() {
        return Err(NeoError::BadInput(
            "int8 compilation needs at least one calibration input set".into(),
        ));
    }

    let stats = calibrate(&f32_module, &planned, &calib)?;
    let analytical = target.analytical_model();
    let (qgraph, quantized, skipped) = quantize_planned(&planned, &stats, &analytical)?;
    let mut qreport =
        QuantizeReport { quantized, skipped, ..Default::default() };
    if quantized == 0 {
        qreport.compile = report;
        return Ok((f32_module, qreport));
    }

    let q_module = finish_module(&qgraph, target, opts, &mut report)?;

    // Accuracy gate: quantized vs f32 outputs over the calibration set.
    let mut max_err = 0f32;
    for set in &calib {
        let reference = f32_module.run(set)?;
        let quant = q_module.run(set)?;
        for (a, b) in reference.iter().zip(&quant) {
            max_err = max_err.max(a.max_abs_diff(b));
        }
    }
    qreport.max_abs_error = max_err;
    if max_err > qopts.error_budget {
        // `finish_module` recorded the quantized module's memory plan;
        // re-point the report at the module actually returned.
        report.memory = *f32_module.memory_report();
        qreport.fell_back = true;
        qreport.compile = report;
        return Ok((f32_module, qreport));
    }
    qreport.compile = report;
    Ok((q_module, qreport))
}

/// Deterministic random calibration inputs from the graph's input shapes.
fn auto_calibration(graph: &Graph, qopts: &QuantizeOptions) -> Result<Vec<Vec<Tensor>>> {
    let shapes: Vec<&Vec<usize>> = graph
        .nodes
        .iter()
        .filter_map(|n| match &n.op {
            Op::Input { shape } => Some(shape),
            _ => None,
        })
        .collect();
    let mut runs = Vec::with_capacity(qopts.auto_runs.max(1));
    for r in 0..qopts.auto_runs.max(1) {
        let mut set = Vec::with_capacity(shapes.len());
        for (i, shape) in shapes.iter().enumerate() {
            let layout = match shape.len() {
                4 => Layout::Nchw,
                2 => Layout::Nc,
                _ => Layout::Flat,
            };
            let seed = qopts.seed ^ (r as u64).wrapping_mul(0x9e37_79b9) ^ (i as u64) << 32;
            let t = Tensor::random(shape.as_slice(), layout, seed, 1.0)
                .map_err(|e| NeoError::BadInput(format!("calibration input: {e}")))?;
            set.push(t);
        }
        runs.push(set);
    }
    Ok(runs)
}

/// Records per-node (min, max) over the calibration set for every node
/// feeding a quantization-candidate conv, via the reference interpreter's
/// probe hook. NaNs are skipped (they quantize to the zero point anyway).
fn calibrate(
    module: &Module,
    planned: &Graph,
    calib: &[Vec<Tensor>],
) -> Result<HashMap<NodeId, (f32, f32)>> {
    let wanted: std::collections::HashSet<NodeId> = planned
        .nodes
        .iter()
        .filter_map(|n| match &n.op {
            Op::Conv2d { schedule: Some(_), quant: None, .. } => Some(n.inputs[0]),
            _ => None,
        })
        .collect();
    let mut stats: HashMap<NodeId, (f32, f32)> = HashMap::new();
    for set in calib {
        module.run_reference_probe(set, &mut |id, t| {
            if !wanted.contains(&id) {
                return;
            }
            let entry = stats.entry(id).or_insert((f32::INFINITY, f32::NEG_INFINITY));
            let n = t.num_elements();
            for &v in &t.data()[..n] {
                if v.is_nan() {
                    continue;
                }
                if v < entry.0 {
                    entry.0 = v;
                }
                if v > entry.1 {
                    entry.1 = v;
                }
            }
        })?;
    }
    Ok(stats)
}

/// Derives the activation quantization parameters from an observed range.
///
/// The range is widened to include zero so the zero point is always an
/// exact u8 code (padding halos and ReLU floors then quantize without
/// error). A degenerate or non-finite range maps to `(1.0, 0)` — every
/// value quantizes to the zero point and dequantizes to exactly 0.
fn activation_qparams(min: f32, max: f32) -> (f32, u8) {
    let lo = min.min(0.0);
    let hi = max.max(0.0);
    let scale = (hi - lo) / 255.0;
    if !(scale.is_finite() && scale > 0.0) {
        return (1.0, 0);
    }
    let zp = (-lo / scale).round().clamp(0.0, 255.0) as u8;
    (scale, zp)
}

/// Rewrites a planned graph onto the int8 path: splices `Quantize` nodes,
/// re-packs weights, folds biases, attaches [`QuantInfo`]. Returns the new
/// graph plus (quantized, skipped) conv counts.
///
/// Only scheduled convs with calibration stats are considered; each must
/// pass the analytical profit test (`conv_time_i8 < conv_time`, infinite
/// for un-quad-packable dense workloads) and its weights must re-pack
/// cleanly. Everything else is carried over untouched.
fn quantize_planned(
    planned: &Graph,
    stats: &HashMap<NodeId, (f32, f32)>,
    model: &impl CostModel,
) -> Result<(Graph, usize, usize)> {
    let mut out = Graph {
        nodes: Vec::with_capacity(planned.len()),
        params: planned.params.clone(),
        outputs: Vec::new(),
    };
    let mut map: Vec<NodeId> = Vec::with_capacity(planned.len());
    // One Quantize node per (producer, qparams); two convs sharing an input
    // share its quantized form. Keyed by producer id only — the qparams
    // derive deterministically from that producer's calibration stats.
    let mut memo: HashMap<NodeId, NodeId> = HashMap::new();
    let (mut quantized, mut skipped) = (0usize, 0usize);

    for node in &planned.nodes {
        let new_inputs: Vec<NodeId> = node.inputs.iter().map(|&i| map[i]).collect();
        let id = match try_quantize_conv(planned, node, &new_inputs, stats, model, &mut out, &mut memo)
        {
            Some(op) => {
                quantized += 1;
                op
            }
            None => {
                if matches!(&node.op, Op::Conv2d { schedule: Some(_), quant: None, .. }) {
                    skipped += 1;
                }
                out.push(node.op.clone(), new_inputs)
            }
        };
        map.push(id);
    }
    out.outputs = planned.outputs.iter().map(|&o| map[o]).collect();
    Ok((out, quantized, skipped))
}

/// Attempts the int8 rewrite of one conv node; `None` keeps it f32.
fn try_quantize_conv(
    planned: &Graph,
    node: &Node,
    new_inputs: &[NodeId],
    stats: &HashMap<NodeId, (f32, f32)>,
    model: &impl CostModel,
    out: &mut Graph,
    memo: &mut HashMap<NodeId, NodeId>,
) -> Option<NodeId> {
    let Op::Conv2d { params, weight, bias, schedule: Some(s), relu, residual, quant: None } =
        &node.op
    else {
        return None;
    };
    let &(lo, hi) = stats.get(&node.inputs[0])?;
    // Per-layer dtype decision: the int8 kernel must be analytically
    // profitable under the schedule the planner assigned. `conv_time_i8`
    // is infinite for dense workloads whose `ic_bn` cannot quad-pack, so
    // this test also encodes hard eligibility.
    let t8 = model.conv_time_i8(params, s);
    if !t8.is_finite() || t8 >= model.conv_time(params, s) {
        return None;
    }
    let w = &planned.params[*weight];
    let qw: QuantizedWeights = if params.groups > 1 {
        quantize_dw_weights(w, s.oc_bn).ok()?
    } else {
        quantize_dense_weights(w, s.ic_bn, s.oc_bn).ok()?
    };
    let (in_scale, in_zp) = activation_qparams(lo, hi);

    let oc = params.out_channels;
    let mult: Vec<f32> = qw.scales.iter().map(|&sw| in_scale * sw).collect();
    // Compile-time zero-point correction: with a zp-filled padding halo the
    // exact dequantized conv is `m·Σa_q·w_q − m·zp·Σw_q`, so the second
    // term folds into the bias once, here.
    let folded: Vec<f32> = (0..oc)
        .map(|o| {
            let base = bias.map_or(0.0, |b| planned.params[b].data()[o]);
            base - mult[o] * f32::from(in_zp) * qw.tap_sums[o] as f32
        })
        .collect();

    let qweight = out.push_param(qw.tensor);
    let qmult = out.push_param(Tensor::from_vec(mult, [oc], Layout::Flat).ok()?);
    let qbias = out.push_param(Tensor::from_vec(folded, [oc], Layout::Flat).ok()?);

    let producer = node.inputs[0];
    let quantize_node = *memo.entry(producer).or_insert_with(|| {
        out.push(Op::Quantize { scale: in_scale, zero_point: in_zp }, vec![new_inputs[0]])
    });
    let mut inputs = vec![quantize_node];
    inputs.extend_from_slice(&new_inputs[1..]);
    let op = Op::Conv2d {
        params: *params,
        weight: qweight,
        bias: Some(qbias),
        schedule: Some(*s),
        relu: *relu,
        residual: *residual,
        quant: Some(QuantInfo { in_scale, in_zp, mult: qmult }),
    };
    Some(out.push(op, inputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, OptLevel};
    use neocpu_graph::GraphBuilder;

    fn conv_net(channels: usize) -> Graph {
        let mut b = GraphBuilder::new(41);
        let x = b.input([1, channels, 12, 12]);
        let c1 = b.conv_bn_relu(x, 16, 3, 1, 1);
        let c2 = b.conv_bn_relu(c1, 16, 3, 1, 1);
        b.finish(vec![c2])
    }

    #[test]
    fn activation_qparams_are_sane() {
        let (s, zp) = activation_qparams(-1.0, 1.0);
        assert!(s > 0.0 && (zp as i32 - 128).abs() <= 1);
        // One-sided (post-ReLU) range: zero point lands at 0.
        let (s, zp) = activation_qparams(0.0, 6.0);
        assert!(s > 0.0);
        assert_eq!(zp, 0);
        // Degenerate and non-finite ranges degrade deterministically.
        assert_eq!(activation_qparams(0.0, 0.0), (1.0, 0));
        assert_eq!(activation_qparams(f32::INFINITY, f32::NEG_INFINITY), (1.0, 0));
    }

    #[test]
    fn quantized_compile_matches_f32_within_budget() {
        let g = conv_net(8);
        let target = CpuTarget::host();
        let opts = CompileOptions::level(OptLevel::O3);
        let qopts = QuantizeOptions::default();
        let (m, report) = compile_quantized(&g, &target, &opts, &qopts).unwrap();
        assert!(report.quantized >= 1, "no conv quantized: {report:?}");
        assert!(!report.fell_back, "accuracy gate rejected: {report:?}");
        assert!(report.max_abs_error <= qopts.error_budget);

        let input = Tensor::random([1, 8, 12, 12], Layout::Nchw, 77, 1.0).unwrap();
        let f = compile(&g, &target, &opts).unwrap();
        let a = f.run(std::slice::from_ref(&input)).unwrap();
        let b = m.run(std::slice::from_ref(&input)).unwrap();
        // Fresh input (not in the calibration set): error stays in the same
        // regime as the gate's, with slack for out-of-range clipping.
        assert!(
            a[0].max_abs_diff(&b[0]) <= 4.0 * qopts.error_budget,
            "fresh-input error {}",
            a[0].max_abs_diff(&b[0])
        );
    }

    #[test]
    fn three_channel_stem_stays_f32() {
        // ic=3 cannot quad-pack: the stem conv must stay f32 while the
        // following 16-channel conv quantizes — per-layer dtype selection.
        let g = conv_net(3);
        let target = CpuTarget::host();
        let (m, report) = compile_quantized(
            &g,
            &target,
            &CompileOptions::level(OptLevel::O3),
            &QuantizeOptions::default(),
        )
        .unwrap();
        assert_eq!(report.quantized, 1, "{report:?}");
        assert_eq!(report.skipped, 1, "{report:?}");
        let input = Tensor::random([1, 3, 12, 12], Layout::Nchw, 5, 1.0).unwrap();
        m.run(&[input]).unwrap();
    }

    #[test]
    fn impossible_budget_falls_back_to_f32() {
        let g = conv_net(8);
        let target = CpuTarget::host();
        let qopts = QuantizeOptions { error_budget: 0.0, ..Default::default() };
        let (m, report) =
            compile_quantized(&g, &target, &CompileOptions::level(OptLevel::O2), &qopts)
                .unwrap();
        assert!(report.fell_back, "a zero budget cannot pass: {report:?}");
        assert!(report.max_abs_error > 0.0);
        // The returned module is the f32 one: bit-identical to a plain compile.
        let input = Tensor::random([1, 8, 12, 12], Layout::Nchw, 9, 1.0).unwrap();
        let f = compile(&g, &target, &CompileOptions::level(OptLevel::O2)).unwrap();
        let a = f.run(std::slice::from_ref(&input)).unwrap();
        let b = m.run(std::slice::from_ref(&input)).unwrap();
        assert_eq!(a[0].data(), b[0].data());
    }

    #[test]
    fn shared_input_convs_share_one_quantize_node() {
        let mut b = GraphBuilder::new(17);
        let x = b.input([1, 8, 10, 10]);
        let stem = b.conv_bn_relu(x, 8, 3, 1, 1);
        let l = b.conv_bn_relu(stem, 8, 3, 1, 1);
        let r = b.conv_bn_relu(stem, 8, 3, 1, 1);
        let y = b.add(l, r);
        let g = b.finish(vec![y]);
        let target = CpuTarget::host();
        let (m, report) = compile_quantized(
            &g,
            &target,
            &CompileOptions::level(OptLevel::O2),
            &QuantizeOptions::default(),
        )
        .unwrap();
        assert!(report.quantized >= 2, "{report:?}");
        let quantize_nodes = m
            .graph()
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Quantize { .. }))
            .count();
        assert_eq!(
            quantize_nodes,
            report.quantized - 1,
            "branch convs must share their input's Quantize node"
        );
        let input = Tensor::random([1, 8, 10, 10], Layout::Nchw, 3, 1.0).unwrap();
        m.run(&[input]).unwrap();
    }

    #[test]
    fn int8_schemes_land_in_db_under_dtype_key() {
        use neocpu_tensor::DType;
        let g = conv_net(8);
        let target = CpuTarget::host();
        let mut db = SchemeDatabase::new();
        let (_, report) = compile_quantized_with_db(
            &g,
            &target,
            &CompileOptions::level(OptLevel::O3),
            &QuantizeOptions::default(),
            &mut db,
        )
        .unwrap();
        assert!(report.quantized >= 1);
        let text = db.to_text();
        // Dtype keys need at least a v2 header; a v3 header (searched
        // non-output-stationary dataflows present) also carries them.
        let header = text.lines().next().unwrap_or("");
        assert!(
            header == "neocpu-scheme-db v2" || header == "neocpu-scheme-db v3",
            "missing v2+ header:\n{text}"
        );
        assert!(text.contains("du8"), "missing int8 dtype key:\n{text}");
        // Reload round-trips, and the u8 entries resolve under the dtype key.
        let reloaded = SchemeDatabase::from_text(&text).unwrap();
        let p = neocpu_kernels::conv::Conv2dParams::square(16, 16, 12, 3, 1, 1);
        assert!(reloaded.get_dtyped(&target.name, &p, DType::U8).is_some());
    }
}
