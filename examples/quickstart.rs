//! Quickstart: build a small CNN, compile it at each optimization level,
//! and compare latencies and outputs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;

use neocpu::{compile, CompileOptions, CpuTarget, OptLevel};
use neocpu_graph::GraphBuilder;
use neocpu_tensor::{Layout, Tensor};

fn main() {
    // A LeNet-flavoured CNN on a 64×64 input.
    let mut b = GraphBuilder::new(2024);
    let x = b.input([1, 3, 64, 64]);
    let c1 = b.conv_bn_relu(x, 32, 3, 1, 1);
    let p1 = b.max_pool(c1, 2, 2, 0);
    let c2 = b.conv_bn_relu(p1, 64, 3, 1, 1);
    let p2 = b.max_pool(c2, 2, 2, 0);
    let c3 = b.conv_bn_relu(p2, 64, 3, 1, 1);
    let g1 = b.global_avg_pool(c3);
    let f = b.flatten(g1);
    let d = b.dense(f, 10);
    let s = b.softmax(d);
    let graph = b.finish(vec![s]);

    let target = CpuTarget::host();
    println!("target: {} ({} cores, {:?})", target.name, target.cores, target.isa);

    let input = Tensor::random([1, 3, 64, 64], Layout::Nchw, 7, 1.0).expect("valid input");
    let mut reference: Option<Tensor> = None;

    for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
        let module = compile(&graph, &target, &CompileOptions::level(level))
            .expect("compilation succeeds");
        // Warm up once, then time a few runs.
        let mut out = module.run(std::slice::from_ref(&input)).expect("inference succeeds");
        let reps = 10;
        let t0 = Instant::now();
        for _ in 0..reps {
            out = module.run(std::slice::from_ref(&input)).expect("inference succeeds");
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
        let result = out.into_iter().next().expect("one output");

        // Every level must agree with the O0 reference.
        match &reference {
            None => reference = Some(result),
            Some(r) => {
                assert!(
                    r.approx_eq(&result, 1e-3),
                    "{level:?} changed the model output!"
                );
            }
        }
        println!(
            "{level:?}: {ms:8.3} ms/inference, {:3} layout transforms in the graph",
            module.transform_count()
        );
    }
    println!("all levels produce identical predictions ✔");
}
