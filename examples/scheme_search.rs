//! The two-stage scheme search, visible end to end (§3.3): run the local
//! search on real ResNet-50 convolution workloads with the *timed*
//! measurer, persist the scheme database, then run the global search and
//! show where it overrides the local optima to avoid layout transforms.
//!
//! ```text
//! cargo run --release --example scheme_search
//! ```

use neocpu_graph::passes::{fuse_ops, simplify_inference};
use neocpu_kernels::Conv2dParams;
use neocpu_models::{build, ModelKind, ModelScale};
use neocpu_search::{
    extract_problem, local_search, solve, AnalyticalModel, GlobalCfg, LocalSearchCfg,
    SchemeDatabase, TimedMeasurer,
};

fn main() {
    let kind = ModelKind::ResNet50;
    let scale = ModelScale::tiny(kind);
    let graph = build(kind, scale, 7);
    let graph = fuse_ops(&simplify_inference(&graph).expect("simplify"))
        .expect("fuse");

    // Stage 1: local search per distinct workload, timed on the real
    // kernel with analytical pre-selection (the hybrid mode).
    let timed = TimedMeasurer { repeats: 2, warmup: 1, max_lanes: usize::MAX };
    let cfg = LocalSearchCfg { preselect: Some(12), keep: 6, ..Default::default() };
    let mut db = SchemeDatabase::new();
    let mut distinct = 0usize;
    for id in graph.conv_ids() {
        let neocpu_graph::Op::Conv2d { params, .. } = &graph.nodes[id].op else {
            unreachable!()
        };
        let p: Conv2dParams = *params;
        let before = db.len();
        db.get_or_insert_with("host", &p, || local_search(&p, &timed, &cfg));
        if db.len() > before {
            distinct += 1;
            let best = db.get("host", &p).expect("just inserted")[0];
            println!(
                "workload C{:4}→{:4} {}x{} k{}: best (ic_bn={:2}, oc_bn={:2}, reg_n={:2}, unroll={}) {:9.1} µs",
                p.in_channels,
                p.out_channels,
                p.in_h,
                p.in_w,
                p.kernel_h,
                best.schedule.ic_bn,
                best.schedule.oc_bn,
                best.schedule.reg_n,
                best.schedule.unroll_ker,
                best.time * 1e6,
            );
        }
    }
    println!(
        "\n{} convolutions, {distinct} distinct workloads searched (the paper reports 20 for ResNet-50)",
        graph.conv_ids().len()
    );

    // Persist and reload the database, as a cross-model cache would.
    let path = std::env::temp_dir().join("neocpu_schemes.txt");
    db.save(&path).expect("save scheme database");
    let db2 = SchemeDatabase::load(&path).expect("load scheme database");
    println!("scheme database round-tripped through {} ({} workloads)", path.display(), db2.len());

    // Stage 2: global search over the whole model.
    let model = AnalyticalModel::default();
    let mut ranked = |_, p: &Conv2dParams| db.get("host", p).expect("searched above").to_vec();
    let problem = extract_problem(&graph, &mut ranked, &model).expect("extract problem");
    let (assignment, obj) = solve(&problem, &GlobalCfg::default());
    let greedy: Vec<usize> = vec![0; problem.nodes.len()];
    let (g_obj, s_obj) = (problem.objective(&greedy), obj);
    println!(
        "\nglobal search: {} conv nodes, {} edges, forest = {}",
        problem.nodes.len(),
        problem.edges.len(),
        problem.is_forest()
    );
    println!("greedy local optima : {:.3} ms (modelled end-to-end conv+transform time)", g_obj * 1e3);
    println!("global assignment   : {:.3} ms", s_obj * 1e3);
    let overridden = assignment.iter().filter(|&&k| k != 0).count();
    println!(
        "the global search moved {overridden}/{} convs off their local optimum to save transforms",
        assignment.len()
    );
}
