//! Fault containment demo: graceful degradation from a poisoned scheme
//! database, plus failpoint drills against a live module.
//!
//! ```text
//! cargo run --release --example fault_containment --features fault-injection
//! ```

use neocpu::faults::{self, FaultMode, Trigger};
use neocpu::{compile_with_report, CompileOptions, CpuTarget, NeoError, OptLevel};
use neocpu_graph::GraphBuilder;
use neocpu_kernels::conv::{Conv2dParams, ConvSchedule};
use neocpu_search::{RankedScheme, SchemeDatabase};
use neocpu_tensor::{Layout, Tensor};

fn main() {
    let mut b = GraphBuilder::new(11);
    let x = b.input([1, 8, 12, 12]);
    let c = b.conv_bn_relu(x, 16, 3, 1, 1);
    let g = b.finish(vec![c]);
    let target = CpuTarget::host();

    // A scheme database poisoned with an entry whose ic_bn (5) does not
    // divide the workload's input channels (8). The verifier drops it,
    // records the diagnostic, and compilation degrades to the default
    // schedule instead of aborting.
    let workload = Conv2dParams::square(8, 16, 12, 3, 1, 1);
    let mut db = SchemeDatabase::new();
    db.put(
        &target.name,
        &workload,
        vec![RankedScheme {
            schedule: ConvSchedule { ic_bn: 5, oc_bn: 16, reg_n: 8, unroll_ker: true, ..Default::default() },
            time: 1e-4,
        }],
    );
    let (module, report) =
        compile_with_report(&g, &target, &CompileOptions::level(OptLevel::O3), &mut db)
            .expect("compilation degrades instead of failing");
    println!("compiled with poisoned database; report clean: {}", report.is_clean());
    for d in &report.dropped_schemes {
        println!("  dropped  node {:>2}: {}", d.node, d.reason);
    }
    for f in &report.fallbacks {
        println!("  fallback node {:>2}: {:?} ({})", f.node, f.fallback, f.reason);
    }

    let input = Tensor::random([1, 8, 12, 12], Layout::Nchw, 5, 1.0).expect("valid input");
    let out = module.run(std::slice::from_ref(&input)).expect("clean run");
    println!("clean inference  -> output shape {:?}", out[0].shape());

    // Surplus inputs are rejected before any kernel executes.
    let two = [input.clone(), input.clone()];
    println!("surplus input    -> {}", module.run(&two).unwrap_err());

    // Fault drills: an injected error, then an injected panic, at the
    // kernel-entry failpoint. Both surface as typed errors from `run`.
    faults::arm(faults::KERNEL_ENTRY, Trigger::Always, FaultMode::Error);
    println!("injected error   -> {}", module.run(std::slice::from_ref(&input)).unwrap_err());
    faults::arm(faults::KERNEL_ENTRY, Trigger::Always, FaultMode::Panic);
    let err = module.run(std::slice::from_ref(&input)).unwrap_err();
    match &err {
        NeoError::Panicked { node, op, .. } => {
            println!("injected panic   -> contained at node {node} ({op}): {err}");
        }
        other => println!("unexpected error shape: {other}"),
    }
    faults::disarm_all();
    module.run(std::slice::from_ref(&input)).expect("module recovers after faults");
    println!("module recovered: clean run after disarming all failpoints ✔");
}
