//! Thread-pool scalability scenario (Figure 4's axis): run the same model
//! on the custom SPSC fork-join pool and on the OpenMP-style pool at
//! increasing thread counts, and measure the per-region fork-join overhead
//! that separates them.
//!
//! ```text
//! cargo run --release --example scalability [threads...]
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use neocpu::{compile, CompileOptions, CpuTarget, OptLevel, PoolChoice};
use neocpu_models::{build, ModelKind, ModelScale};
use neocpu_tensor::{Layout, Tensor};
use neocpu_threadpool::{OmpLikePool, Parallelism, ThreadPool};

fn region_overhead(pool: &dyn Parallelism, regions: usize) -> f64 {
    let sink = AtomicUsize::new(0);
    let t0 = Instant::now();
    for _ in 0..regions {
        pool.run(pool.num_threads(), &|_, range| {
            sink.fetch_add(range.len(), Ordering::Relaxed);
        });
    }
    t0.elapsed().as_secs_f64() / regions as f64 * 1e6
}

fn main() {
    let threads: Vec<usize> = {
        let args: Vec<usize> =
            std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
        if args.is_empty() {
            vec![1, 2, 4]
        } else {
            args
        }
    };

    println!("== per-region fork-join overhead (empty region, µs) ==");
    println!("{:>8}  {:>12}  {:>12}", "threads", "custom pool", "omp-like");
    for &n in &threads {
        let custom = ThreadPool::new(n);
        let omp = OmpLikePool::new(n);
        println!(
            "{n:>8}  {:>12.2}  {:>12.2}",
            region_overhead(&custom, 2000),
            region_overhead(&omp, 2000)
        );
    }

    let kind = ModelKind::ResNet50;
    let scale = ModelScale::tiny(kind);
    let graph = build(kind, scale, 11);
    let input =
        Tensor::random([1, 3, scale.input, scale.input], Layout::Nchw, 3, 1.0).expect("input");
    let target = CpuTarget::host();

    println!("\n== {} images/sec vs threads (batch 1) ==", kind.name());
    println!("{:>8}  {:>12}  {:>12}", "threads", "custom pool", "omp-like");
    for &n in &threads {
        let mut row = Vec::new();
        for pool in [PoolChoice::Custom, PoolChoice::OmpLike] {
            let opts = CompileOptions::level(OptLevel::O2).with_threads(n).with_pool(pool);
            let module = compile(&graph, &target, &opts).expect("compile");
            let _ = module.run(std::slice::from_ref(&input)).expect("warmup");
            let reps = 5;
            let t0 = Instant::now();
            for _ in 0..reps {
                let _ = module.run(std::slice::from_ref(&input)).expect("inference");
            }
            row.push(reps as f64 / t0.elapsed().as_secs_f64());
        }
        println!("{n:>8}  {:>12.2}  {:>12.2}", row[0], row[1]);
    }
    println!(
        "\nNote: on a single-core host, thread counts above 1 oversubscribe;\n\
         the overhead gap between the pools is the meaningful signal, and\n\
         the fig4 bench projects strong scaling from it (see EXPERIMENTS.md)."
    );
}
