//! Image-classification scenario: compile ResNet-50 — the paper's flagship
//! model — and serve single-image (batch 1) inferences, printing the top-5
//! classes and the latency distribution, exactly the serving workload the
//! paper's latency evaluation models.
//!
//! ```text
//! cargo run --release --example image_classification [--full]
//! ```
//!
//! `--full` uses the paper's 224×224 / 1000-class configuration (slow on
//! small machines); the default is a reduced-scale ResNet-50.

use std::time::Instant;

use neocpu::{compile, CompileOptions, CpuTarget, OptLevel};
use neocpu_models::{build, ModelKind, ModelScale};
use neocpu_tensor::{Layout, Tensor};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let kind = ModelKind::ResNet50;
    let scale = if full { ModelScale::full(kind) } else { ModelScale::tiny(kind) };
    println!(
        "building {} at {}x{} input, {} classes...",
        kind.name(),
        scale.input,
        scale.input,
        scale.classes
    );
    let graph = build(kind, scale, 42);
    println!(
        "{} graph nodes, {} convolutions, {:.2} GMACs",
        graph.len(),
        graph.conv_ids().len(),
        graph.conv_macs() as f64 / 1e9
    );

    let target = CpuTarget::host();
    let opts = CompileOptions::level(OptLevel::O2).with_threads(target.cores);
    let t0 = Instant::now();
    let module = compile(&graph, &target, &opts).expect("compilation succeeds");
    println!(
        "compiled for {} in {:.2}s ({} layout transforms survive)",
        target.name,
        t0.elapsed().as_secs_f64(),
        module.transform_count()
    );

    // Simulate a stream of single images (batch size 1, as in §4).
    let mut latencies = Vec::new();
    for i in 0..20 {
        let image =
            Tensor::random([1, 3, scale.input, scale.input], Layout::Nchw, 100 + i, 1.0)
                .expect("valid image");
        let t = Instant::now();
        let out = module.run(&[image]).expect("inference succeeds");
        latencies.push(t.elapsed().as_secs_f64() * 1e3);
        if i == 0 {
            let probs = out[0].data();
            let mut idx: Vec<usize> = (0..probs.len()).collect();
            idx.sort_by(|&a, &b| probs[b].total_cmp(&probs[a]));
            println!("top-5 classes of first image:");
            for &k in idx.iter().take(5) {
                println!("  class {k:4}  p = {:.4}", probs[k]);
            }
        }
    }
    latencies.sort_by(f64::total_cmp);
    let mean: f64 = latencies.iter().sum::<f64>() / latencies.len() as f64;
    println!(
        "latency over {} inferences: mean {mean:.2} ms, p50 {:.2} ms, p99 {:.2} ms",
        latencies.len(),
        latencies[latencies.len() / 2],
        latencies[latencies.len() - 1],
    );
}
